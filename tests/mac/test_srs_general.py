"""Integration tests for general-model single-round simulation (Cor. 1)."""

import pytest

from repro import (
    PairwiseTokenExchange,
    PhysicalParams,
    TDMASchedule,
    UnitDiskGraph,
    greedy_coloring,
    power_graph,
    simulate_general_algorithm,
    uniform_deployment,
)
from repro.errors import ConfigurationError, ScheduleError
from repro.messaging.model import run_general_rounds


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def world(params):
    dep = uniform_deployment(80, 6.0, seed=33)
    graph = UnitDiskGraph(dep.positions, params.r_t)
    coloring = greedy_coloring(power_graph(graph, params.mac_distance + 1))
    return graph, TDMASchedule(coloring)


def run_both(graph, schedule, params, strategy):
    simulated = [PairwiseTokenExchange() for _ in range(graph.n)]
    report = simulate_general_algorithm(
        graph, simulated, schedule, params, max_rounds=5, strategy=strategy
    )
    native = [PairwiseTokenExchange() for _ in range(graph.n)]
    run_general_rounds(graph, native, max_rounds=5)
    return report, [a.output() for a in native]


class TestPackedStrategy:
    def test_lossless_and_equal(self, world, params):
        graph, schedule = world
        report, native_outputs = run_both(graph, schedule, params, "packed")
        assert report.exact
        assert report.halted
        assert list(report.outputs) == native_outputs

    def test_one_frame_per_round(self, world, params):
        graph, schedule = world
        report, _ = run_both(graph, schedule, params, "packed")
        assert report.slots == report.rounds * schedule.frame_length


class TestSerialStrategy:
    def test_lossless_and_equal(self, world, params):
        graph, schedule = world
        report, native_outputs = run_both(graph, schedule, params, "serial")
        assert report.exact
        assert list(report.outputs) == native_outputs

    def test_costs_delta_subframes(self, world, params):
        # Corollary 1's small-message trade-off: ~Delta frames per round
        graph, schedule = world
        packed, _ = run_both(graph, schedule, params, "packed")
        serial, _ = run_both(graph, schedule, params, "serial")
        assert serial.slots > packed.slots
        # subframes per round bounded by the max out-degree
        assert serial.slots <= packed.slots * graph.max_degree

    def test_every_token_echoed(self, world, params):
        graph, schedule = world
        report, _ = run_both(graph, schedule, params, "serial")
        for node, output in enumerate(report.outputs):
            expected = sorted(
                ("token", node, int(v)) for v in graph.neighbors(node)
            )
            assert output == expected


class TestValidation:
    def test_unknown_strategy(self, world, params):
        graph, schedule = world
        algos = [PairwiseTokenExchange() for _ in range(graph.n)]
        with pytest.raises(ConfigurationError):
            simulate_general_algorithm(
                graph, algos, schedule, params, 5, strategy="telepathy"
            )

    def test_instance_count(self, world, params):
        graph, schedule = world
        with pytest.raises(ScheduleError):
            simulate_general_algorithm(
                graph, [PairwiseTokenExchange()], schedule, params, 5
            )

    def test_addressing_non_neighbor_rejected(self, world, params):
        graph, schedule = world

        class Bad(PairwiseTokenExchange):
            def send_to(self, round_index):
                self._rounds_done = 2
                return {self._ctx.node: "self"}

        algos = [Bad() for _ in range(graph.n)]
        with pytest.raises(ScheduleError):
            simulate_general_algorithm(graph, algos, schedule, params, 2)
