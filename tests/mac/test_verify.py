"""Integration tests for the Theorem 3 TDMA audit."""

import numpy as np
import pytest

from repro import PhysicalParams, uniform_deployment
from repro.coloring.baselines import greedy_coloring
from repro.errors import ScheduleError
from repro.graphs.coloring import Coloring
from repro.graphs.power import power_graph
from repro.graphs.udg import UnitDiskGraph
from repro.mac.tdma import TDMASchedule
from repro.mac.verify import verify_tdma_broadcast


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def dense(params):
    dep = uniform_deployment(130, 7.0, seed=14)
    return UnitDiskGraph(dep.positions, params.r_t)


class TestTheorem3:
    def test_theorem3_distance_is_interference_free(self, dense, params):
        d = params.mac_distance
        coloring = greedy_coloring(power_graph(dense, d + 1))
        report = verify_tdma_broadcast(dense, TDMASchedule(coloring), params)
        assert report.interference_free
        assert report.success_rate == 1.0
        assert report.failures == ()

    def test_distance1_coloring_fails(self, dense, params):
        coloring = greedy_coloring(dense)
        report = verify_tdma_broadcast(dense, TDMASchedule(coloring), params)
        assert not report.interference_free
        assert report.success_rate < 1.0
        assert len(report.failures) > 0

    def test_distance2_coloring_still_fails(self, dense, params):
        # the paper's motivating observation: the classical distance-2
        # (graph-model) fix does NOT suffice under additive SINR
        coloring = greedy_coloring(power_graph(dense, 2.0))
        report = verify_tdma_broadcast(dense, TDMASchedule(coloring), params)
        assert not report.interference_free

    def test_monotone_in_distance(self, dense, params):
        rates = []
        for k in (1.0, 2.0, params.mac_distance + 1):
            coloring = greedy_coloring(power_graph(dense, k))
            report = verify_tdma_broadcast(dense, TDMASchedule(coloring), params)
            rates.append(report.success_rate)
        assert rates[0] <= rates[1] <= rates[2] == 1.0

    def test_expected_counts_all_pairs(self, dense, params):
        coloring = greedy_coloring(dense)
        report = verify_tdma_broadcast(dense, TDMASchedule(coloring), params)
        assert report.expected == 2 * dense.edge_count

    def test_size_mismatch_rejected(self, dense, params):
        schedule = TDMASchedule(Coloring(np.array([0, 1])))
        with pytest.raises(ScheduleError):
            verify_tdma_broadcast(dense, schedule, params)

    def test_sparse_graph_trivially_free(self, params):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [20.0, 20.0]])
        graph = UnitDiskGraph(positions, params.r_t)
        coloring = greedy_coloring(power_graph(graph, params.mac_distance + 1))
        report = verify_tdma_broadcast(graph, TDMASchedule(coloring), params)
        assert report.interference_free
