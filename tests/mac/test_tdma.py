"""Unit tests for TDMA schedules."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.graphs.coloring import Coloring
from repro.mac.tdma import TDMASchedule


@pytest.fixture()
def schedule():
    return TDMASchedule(Coloring(np.array([0, 5, 0, 2])))


class TestTDMASchedule:
    def test_frame_length_is_color_count(self, schedule):
        assert schedule.frame_length == 3

    def test_slots_follow_color_order(self, schedule):
        assert schedule.slot_of(0) == 0  # color 0
        assert schedule.slot_of(3) == 1  # color 2
        assert schedule.slot_of(1) == 2  # color 5

    def test_color_of_slot(self, schedule):
        assert schedule.color_of_slot(0) == 0
        assert schedule.color_of_slot(1) == 2
        assert schedule.color_of_slot(2) == 5

    def test_nodes_in_slot(self, schedule):
        np.testing.assert_array_equal(schedule.nodes_in_slot(0), [0, 2])
        np.testing.assert_array_equal(schedule.nodes_in_slot(2), [1])

    def test_every_node_scheduled_once_per_frame(self, schedule):
        seen = []
        for slot in range(schedule.frame_length):
            seen.extend(int(v) for v in schedule.nodes_in_slot(slot))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_global_slot(self, schedule):
        assert schedule.global_slot(0, 1) == 1
        assert schedule.global_slot(2, 1) == 7

    def test_global_slot_validation(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.global_slot(0, 99)
        with pytest.raises(ScheduleError):
            schedule.global_slot(-1, 0)

    def test_slot_out_of_range(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.color_of_slot(3)

    def test_empty_coloring_rejected(self):
        with pytest.raises(ScheduleError):
            TDMASchedule(Coloring(np.array([], dtype=np.int64)))

    def test_n(self, schedule):
        assert schedule.n == 4
