"""Integration tests for the one-call MAC pipeline."""

import pytest

from repro import PhysicalParams, uniform_deployment
from repro.errors import ScheduleError
from repro.mac.pipeline import build_mac_layer


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def layer(params):
    deployment = uniform_deployment(40, 8.0, seed=21)
    return build_mac_layer(deployment, params, seed=4)


class TestBuildMacLayer:
    def test_interference_free(self, layer):
        assert layer.interference_free
        assert layer.audit.success_rate == 1.0

    def test_coloring_valid_at_mac_distance(self, layer, params):
        d = params.mac_distance
        assert layer.coloring.is_valid(
            layer.graph.positions, params.r_t, d=d + 1
        )

    def test_palette_compacted(self, layer):
        assert layer.coloring.max_color == layer.coloring.num_colors - 1

    def test_frame_matches_palette(self, layer):
        assert layer.frame_length == layer.coloring.num_colors

    def test_underlying_run_exposed(self, layer):
        assert layer.coloring_run.stats.completed
        assert layer.coloring_run.graph.radius > layer.graph.radius

    def test_budget_exhaustion_raises(self, params):
        deployment = uniform_deployment(40, 8.0, seed=21)
        with pytest.raises(ScheduleError):
            build_mac_layer(deployment, params, seed=4, max_slots=10)

    def test_require_clean_false_returns_partial(self, params):
        deployment = uniform_deployment(40, 8.0, seed=21)
        layer = build_mac_layer(
            deployment, params, seed=4, require_clean=False, max_slots=10
        )
        assert not layer.coloring_run.stats.completed
