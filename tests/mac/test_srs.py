"""Integration tests for single-round simulation (Corollary 1)."""

import pytest

from repro import PhysicalParams, uniform_deployment
from repro.coloring.baselines import greedy_coloring
from repro.errors import ScheduleError
from repro.graphs.power import power_graph
from repro.graphs.udg import UnitDiskGraph
from repro.mac.srs import simulate_uniform_algorithm
from repro.mac.tdma import TDMASchedule
from repro.messaging.algorithms import (
    BFSTreeAlgorithm,
    FloodingBroadcast,
    MaxIdLeaderElection,
)
from repro.messaging.model import run_uniform_rounds


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def world(params):
    dep = uniform_deployment(100, 6.0, seed=24)  # connected for this seed
    graph = UnitDiskGraph(dep.positions, params.r_t)
    assert graph.is_connected()
    coloring = greedy_coloring(power_graph(graph, params.mac_distance + 1))
    return graph, TDMASchedule(coloring)


class TestFloodingSRS:
    def test_lossless_and_equal_to_native(self, world, params):
        graph, schedule = world
        simulated = [FloodingBroadcast(source=0) for _ in range(graph.n)]
        report = simulate_uniform_algorithm(
            graph, simulated, schedule, params, max_rounds=100
        )
        assert report.exact
        assert report.halted
        native = [FloodingBroadcast(source=0) for _ in range(graph.n)]
        native_report = run_uniform_rounds(graph, native, max_rounds=100)
        assert report.rounds == native_report.rounds
        assert [a.output() for a in simulated] == [a.output() for a in native]

    def test_slot_cost_is_rounds_times_frame(self, world, params):
        graph, schedule = world
        algos = [FloodingBroadcast(source=0) for _ in range(graph.n)]
        report = simulate_uniform_algorithm(
            graph, algos, schedule, params, max_rounds=100
        )
        assert report.slots == report.rounds * schedule.frame_length


class TestBFSSRS:
    def test_depths_are_hop_distances(self, world, params):
        graph, schedule = world
        algos = [BFSTreeAlgorithm(root=0) for _ in range(graph.n)]
        report = simulate_uniform_algorithm(
            graph, algos, schedule, params, max_rounds=100
        )
        assert report.exact
        # verify against a direct BFS
        import collections

        dist = {0: 0}
        queue = collections.deque([0])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                v = int(v)
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        for node, output in enumerate(report.outputs):
            if node in dist and node != 0:
                parent, depth = output
                assert depth == dist[node]
                assert depth == dist[int(parent)] + 1


class TestLeaderElectionSRS:
    def test_agreement_on_component_max(self, world, params):
        graph, schedule = world
        rounds = 25  # comfortably above the diameter
        algos = [MaxIdLeaderElection(rounds=rounds) for _ in range(graph.n)]
        report = simulate_uniform_algorithm(
            graph, algos, schedule, params, max_rounds=rounds + 1
        )
        assert report.exact
        for component in graph.connected_components():
            expected = int(component.max())
            for node in component:
                assert report.outputs[int(node)] == expected


class TestValidation:
    def test_algorithm_count_mismatch(self, world, params):
        graph, schedule = world
        with pytest.raises(ScheduleError):
            simulate_uniform_algorithm(
                graph, [FloodingBroadcast(source=0)], schedule, params, 10
            )

    def test_zero_rounds(self, world, params):
        graph, schedule = world
        algos = [FloodingBroadcast(source=0) for _ in range(graph.n)]
        report = simulate_uniform_algorithm(graph, algos, schedule, params, 0)
        assert report.rounds == 0
        assert not report.halted
