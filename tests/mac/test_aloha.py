"""Unit/integration tests for the slotted-ALOHA baseline."""

import numpy as np
import pytest

from repro import PhysicalParams, uniform_deployment
from repro.errors import ConfigurationError
from repro.graphs.udg import UnitDiskGraph
from repro.mac.aloha import run_slotted_aloha


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def graph(params):
    dep = uniform_deployment(80, 6.0, seed=17)
    return UnitDiskGraph(dep.positions, params.r_t)


class TestAloha:
    def test_completes_with_tuned_probability(self, graph, params):
        report = run_slotted_aloha(
            graph, params, probability=1.0 / graph.max_degree,
            max_slots=30_000, seed=0,
        )
        assert report.completed
        assert report.coverage == 1.0

    def test_overaggressive_probability_stalls(self, graph, params):
        # p = 0.9: persistent collisions keep dense pairs unserved
        report = run_slotted_aloha(
            graph, params, probability=0.9, max_slots=2_000, seed=0
        )
        assert not report.completed
        assert report.coverage < 1.0

    def test_deterministic_per_seed(self, graph, params):
        a = run_slotted_aloha(graph, params, 0.05, max_slots=5_000, seed=3)
        b = run_slotted_aloha(graph, params, 0.05, max_slots=5_000, seed=3)
        assert a.slots_run == b.slots_run
        assert a.served_pairs == b.served_pairs

    def test_isolated_nodes_complete_immediately(self, params):
        positions = np.array([[0.0, 0.0], [50.0, 50.0]])
        graph = UnitDiskGraph(positions, params.r_t)
        report = run_slotted_aloha(graph, params, 0.5, max_slots=10, seed=0)
        assert report.completed
        assert report.total_pairs == 0
        assert report.coverage == 1.0

    def test_zero_probability_never_delivers(self, graph, params):
        report = run_slotted_aloha(graph, params, 0.0, max_slots=100, seed=0)
        assert not report.completed
        assert report.served_pairs == 0

    def test_probability_validated(self, graph, params):
        with pytest.raises(ConfigurationError):
            run_slotted_aloha(graph, params, 1.5, max_slots=10, seed=0)
