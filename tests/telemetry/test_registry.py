"""Unit tests for the metric primitives and the registry."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import NULL_METRIC, Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_snapshot(self):
        counter = Counter("x")
        counter.inc(3)
        assert counter.snapshot() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_set_max_keeps_running_maximum(self):
        gauge = Gauge("g")
        gauge.set_max(3)
        gauge.set_max(1)
        gauge.set_max(7)
        assert gauge.value == 7


class TestHistogram:
    def test_aggregates(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.mean == pytest.approx(2.0)
        assert hist.vmin == 1.0
        assert hist.vmax == 3.0

    def test_bucket_counts_sum_to_count(self):
        hist = Histogram("h")
        for value in (1e-7, 3e-4, 0.02, 5.0, 1e4):
            hist.observe(value)
        assert sum(hist.counts) == hist.count == 5

    def test_empty_snapshot_has_null_extrema(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestRegistry:
    def test_same_name_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        assert list(registry.snapshot()) == ["a", "z"]

    def test_rows_expand_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(2.0)
        names = [row["metric"] for row in registry.rows()]
        assert names == ["h.count", "h.mean", "h.min", "h.max"]


class TestDisabledRegistry:
    def test_factories_return_shared_null_metric(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_METRIC
        assert registry.gauge("b") is NULL_METRIC
        assert registry.histogram("c") is NULL_METRIC

    def test_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc(100)
        registry.gauge("b").set_max(5)
        registry.histogram("c").observe(1.0)
        assert registry.snapshot() == {}
        assert len(registry) == 0

    def test_null_metric_is_inert(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(1.0)
        NULL_METRIC.set_max(2.0)
        NULL_METRIC.observe(3.0)
        assert NULL_METRIC.value == 0.0
        assert NULL_METRIC.snapshot() == {}
