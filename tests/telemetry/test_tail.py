"""Tail-follow JSONL reader: live appends, partial lines, stop signals."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import follow_jsonl
from repro.telemetry.jsonl import TelemetryWriter


def write_lines(path, records) -> None:
    with path.open("a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestDrainFinished:
    def test_reads_a_finished_file_completely(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = [{"k": "row", "i": i} for i in range(5)]
        write_lines(path, records)
        assert list(follow_jsonl(path, complete=lambda: True)) == records

    def test_missing_file_with_complete_writer_yields_nothing(self, tmp_path):
        assert (
            list(follow_jsonl(tmp_path / "never.jsonl", complete=lambda: True))
            == []
        )

    def test_record_landing_with_completion_is_not_lost(self, tmp_path):
        # complete() is checked before the read, so a record flushed just
        # before the writer declared itself done is always drained
        path = tmp_path / "run.jsonl"
        state = {"done": False}

        def complete() -> bool:
            if not state["done"]:
                # the "writer" finishes between this check and the next:
                # its final record must still be yielded
                write_lines(path, [{"k": "late"}])
                state["done"] = True
                return False
            return True

        records = list(follow_jsonl(path, poll_s=0.01, complete=complete))
        assert {"k": "late"} in records


class TestLiveFollow:
    def test_follows_appends_from_another_thread(self, tmp_path):
        path = tmp_path / "run.jsonl"
        done = threading.Event()

        def writer() -> None:
            for i in range(20):
                write_lines(path, [{"i": i}])
                time.sleep(0.005)
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        records = list(
            follow_jsonl(
                path, poll_s=0.01, complete=done.is_set, timeout_s=30
            )
        )
        thread.join()
        assert records == [{"i": i} for i in range(20)]

    def test_partial_line_is_held_back_until_terminated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            handle.write('{"i": 0}\n{"i": 1')  # second record mid-write
            handle.flush()
        stream = follow_jsonl(path, poll_s=0.01, timeout_s=30)
        assert next(stream) == {"i": 0}
        with path.open("a", encoding="utf-8") as handle:
            handle.write("}\n")
        assert next(stream) == {"i": 1}
        stream.close()

    def test_follows_a_real_telemetry_writer(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = TelemetryWriter(path, command="test")
        writer.write({"k": "row", "row": {"x": 1}})
        writer.summary({"rows": 1})
        writer.close()
        kinds = [
            record["k"]
            for record in follow_jsonl(path, complete=lambda: True)
        ]
        assert kinds == ["header", "row", "summary"]


class TestStopAndFailure:
    def test_stop_event_returns_immediately(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_lines(path, [{"i": 0}])
        stop = threading.Event()
        stop.set()
        assert list(follow_jsonl(path, stop=stop)) == []

    def test_timeout_raises_instead_of_truncating(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_lines(path, [{"i": 0}])
        stream = follow_jsonl(path, poll_s=0.01, timeout_s=0.05)
        assert next(stream) == {"i": 0}
        with pytest.raises(ConfigurationError, match="timed out"):
            next(stream)

    def test_corrupt_json_names_the_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"i": 0}\nnot json\n', encoding="utf-8")
        stream = follow_jsonl(path, complete=lambda: True)
        assert next(stream) == {"i": 0}
        with pytest.raises(ConfigurationError, match="line 2"):
            next(stream)

    def test_non_object_records_are_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="JSON object"):
            next(follow_jsonl(path, complete=lambda: True))
