"""End-to-end telemetry: instrumented runs, determinism, exact round-trips."""

import numpy as np
import pytest

from repro import PhysicalParams, uniform_deployment
from repro.analysis.protocol_stats import trace_statistics
from repro.coloring.runner import run_mw_coloring
from repro.sinr.channel import SINRChannel, Transmission
from repro.telemetry import MetricsRegistry, Telemetry, read_run


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def deployment():
    return uniform_deployment(n=40, extent=5.0, seed=1)


class TestDeterminism:
    def test_telemetry_does_not_change_the_run(self, deployment, params):
        plain = run_mw_coloring(deployment, params, seed=1)
        telemetry = Telemetry()
        observed = run_mw_coloring(deployment, params, seed=1, telemetry=telemetry)
        assert observed.stats == plain.stats
        assert np.array_equal(observed.coloring.colors, plain.coloring.colors)
        assert np.array_equal(observed.decision_slots, plain.decision_slots)
        # ... while actually collecting telemetry:
        assert telemetry.metrics.counter("sim.slots").value > 0
        assert telemetry.profiler.slots > 0

    def test_disabled_telemetry_also_neutral(self, deployment, params):
        plain = run_mw_coloring(deployment, params, seed=1)
        off = Telemetry(metrics=False, profile=False, trace=False)
        observed = run_mw_coloring(deployment, params, seed=1, telemetry=off)
        assert observed.stats == plain.stats


class TestDisabledFastPath:
    def test_disabled_metrics_never_attach(self, deployment, params):
        channel = SINRChannel(deployment.positions, params)
        channel.attach_metrics(MetricsRegistry(enabled=False))
        assert channel._m_resolve_seconds is None
        assert channel._engine._m_evals is None
        channel.resolve([Transmission(sender=0, payload="x")])
        # nothing was recorded anywhere

    def test_enabled_metrics_attach_and_count(self, deployment, params):
        channel = SINRChannel(deployment.positions, params)
        registry = MetricsRegistry()
        channel.attach_metrics(registry)
        channel.resolve([Transmission(sender=0, payload="x")])
        snapshot = registry.snapshot()
        assert snapshot["channel.resolve_calls"]["value"] == 1
        assert snapshot["channel.transmissions"]["value"] == 1
        assert snapshot["engine.cache_misses"]["value"] == 1
        assert snapshot["engine.interference_evaluations"]["value"] > 0

    def test_telemetry_off_bundle_exports_nothing(self, deployment, params):
        telemetry = Telemetry(out=None, metrics=False, profile=False, trace=False)
        run_mw_coloring(deployment, params, seed=1, telemetry=telemetry)
        assert telemetry.metrics.snapshot() == {}
        assert telemetry.profiler is None
        assert telemetry.export("color") is None


class TestJsonlRoundTrip:
    def test_offline_stats_equal_live(self, tmp_path, deployment, params):
        out = tmp_path / "run.jsonl"
        telemetry = Telemetry(out=out, meta={"seed": 1})
        result = run_mw_coloring(deployment, params, seed=1, telemetry=telemetry)

        run = read_run(out)
        assert run.command == "color"
        assert run.meta == {"seed": 1}
        # trace events survive (JSON normalises tuple details to lists)
        assert len(run.trace) == len(result.trace)
        import json

        def normalised(events):
            return [
                (e.slot, e.node, e.kind, json.loads(json.dumps(e.detail)))
                for e in events
            ]

        assert normalised(run.trace.events) == normalised(result.trace.events)
        # protocol statistics recomputed offline match the live aggregation
        assert run.protocol_stats() == trace_statistics(result)
        # summary carries the run's headline numbers
        assert run.summary["slots_run"] == result.stats.slots_run
        assert run.summary["transmissions"] == result.stats.transmissions
        # metrics snapshot agrees with the simulator's own accounting
        assert run.metrics["sim.transmissions"]["value"] == result.stats.transmissions
        assert run.metrics["sim.deliveries"]["value"] == result.stats.deliveries
        # per-slot profiles cover every active slot
        assert run.profile_summary()["slots"] == telemetry.profiler.slots

    def test_srs_export(self, tmp_path, params):
        from repro.coloring.baselines import greedy_coloring
        from repro.graphs.power import power_graph
        from repro.graphs.udg import UnitDiskGraph
        from repro.mac.srs import simulate_uniform_algorithm
        from repro.mac.tdma import TDMASchedule
        from repro.messaging.algorithms import FloodingBroadcast

        deployment = uniform_deployment(n=30, extent=4.0, seed=5)
        graph = UnitDiskGraph(deployment.positions, params.r_t)
        assert graph.is_connected()
        schedule = TDMASchedule(
            greedy_coloring(power_graph(graph, params.mac_distance + 1))
        )
        out = tmp_path / "srs.jsonl"
        report = simulate_uniform_algorithm(
            graph,
            [FloodingBroadcast(source=0) for _ in range(graph.n)],
            schedule,
            params,
            max_rounds=50,
            telemetry=Telemetry(out=out),
        )
        run = read_run(out)
        assert run.command == "srs"
        assert run.summary["rounds"] == report.rounds
        assert run.summary["lost_deliveries"] == report.lost_deliveries
        assert run.metrics["srs.rounds"]["value"] == report.rounds
        assert run.delivery_rate is not None
