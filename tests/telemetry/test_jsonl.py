"""JSONL export/import: schema checks and exact round-trips."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    SCHEMA,
    MetricsRegistry,
    SlotProfiler,
    TelemetryWriter,
    read_run,
)


def test_header_is_first_line(tmp_path):
    path = tmp_path / "run.jsonl"
    with TelemetryWriter(path, "color", meta={"seed": 3}):
        pass
    first = json.loads(path.read_text().splitlines()[0])
    assert first == {
        "k": "header", "schema": SCHEMA, "command": "color",
        "meta": {"seed": 3},
    }


def test_write_after_close_raises(tmp_path):
    writer = TelemetryWriter(tmp_path / "run.jsonl", "color")
    writer.close()
    with pytest.raises(ConfigurationError, match="closed"):
        writer.write({"k": "row"})
    writer.close()  # idempotent


def test_read_run_round_trips_all_record_kinds(tmp_path):
    path = tmp_path / "run.jsonl"
    registry = MetricsRegistry()
    registry.counter("engine.cache_hits").inc(3)
    registry.counter("engine.cache_misses").inc(1)
    profiler = SlotProfiler()
    profiler.record_slot(0, node_s=0.1, resolve_s=0.2, observer_s=0.0,
                         transmissions=1, deliveries=2)
    with TelemetryWriter(path, "srs", meta={"n": 5}) as writer:
        writer.write({"k": "trace", "slot": 1, "node": 0, "kind": "reset",
                      "detail": None})
        writer.slot_profiles(profiler)
        writer.write({"k": "row", "row": {"a": 1}})
        writer.metrics(registry)
        writer.summary({"transmissions": 4, "deliveries": 2})

    run = read_run(path)
    assert run.schema == SCHEMA
    assert run.command == "srs"
    assert run.meta == {"n": 5}
    assert len(run.trace) == 1 and run.trace.events[0].kind == "reset"
    assert run.slots[0]["resolve_s"] == 0.2
    assert run.rows == [{"a": 1}]
    assert run.metrics["engine.cache_hits"]["value"] == 3
    assert run.summary == {"transmissions": 4, "deliveries": 2}
    assert run.cache_hit_rate == pytest.approx(0.75)
    assert run.delivery_rate == pytest.approx(0.5)


def test_profile_summary_matches_live_profiler(tmp_path):
    path = tmp_path / "run.jsonl"
    profiler = SlotProfiler()
    for slot in range(5):
        profiler.record_slot(slot, node_s=0.01, resolve_s=0.02,
                             observer_s=0.001, transmissions=1, deliveries=1)
    with TelemetryWriter(path, "color") as writer:
        writer.slot_profiles(profiler)
    assert read_run(path).profile_summary() == profiler.summary()


def test_imported_trace_is_frozen(tmp_path):
    path = tmp_path / "run.jsonl"
    with TelemetryWriter(path, "color") as writer:
        writer.write({"k": "trace", "slot": 0, "node": 1, "kind": "enter_A",
                      "detail": None})
    trace = read_run(path).trace
    assert not trace.enabled
    trace.record(5, 2, "reset")  # explicit no-op on frozen history
    assert len(trace) == 1


def test_unknown_record_kinds_are_skipped(tmp_path):
    path = tmp_path / "run.jsonl"
    with TelemetryWriter(path, "color") as writer:
        writer.write({"k": "hologram", "data": 42})
        writer.summary({"n": 1})
    run = read_run(path)
    assert run.summary == {"n": 1}


class TestRejectedFiles:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            read_run(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text('{"k": "summary", "summary": {}}\n')
        with pytest.raises(ConfigurationError, match="header"):
            read_run(path)

    def test_major_schema_mismatch(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"k": "header", "schema": "other.format/9", "command": "x"}\n'
        )
        with pytest.raises(ConfigurationError, match="schema"):
            read_run(path)

    def test_same_family_newer_version_accepted(self, tmp_path):
        path = tmp_path / "minor.jsonl"
        path.write_text(
            '{"k": "header", "schema": "repro.telemetry/2", "command": "x"}\n'
        )
        assert read_run(path).schema == "repro.telemetry/2"


class TestCorruptArtifacts:
    """A killed parallel worker can leave partial files; fail clearly."""

    HEADER = '{"k": "header", "schema": "repro.telemetry/1", "command": "x"}\n'

    def test_truncated_final_line(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text(self.HEADER + '{"k": "row", "row": {"a"')
        with pytest.raises(ConfigurationError, match="line 2.*truncated"):
            read_run(path)

    def test_garbage_mid_file(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(
            self.HEADER
            + '{"k": "row", "row": {"a": 1}}\n'
            + "\x00\x00 not json at all\n"
            + '{"k": "summary", "summary": {}}\n'
        )
        with pytest.raises(ConfigurationError, match="line 3"):
            read_run(path)

    def test_corrupt_header_line(self, tmp_path):
        path = tmp_path / "badheader.jsonl"
        path.write_text('{"k": "header", "schema": "repro.telem')
        with pytest.raises(ConfigurationError, match="line 1"):
            read_run(path)

    def test_non_object_record(self, tmp_path):
        path = tmp_path / "array.jsonl"
        path.write_text(self.HEADER + "[1, 2, 3]\n")
        with pytest.raises(ConfigurationError, match="line 2.*JSON object"):
            read_run(path)

    def test_trace_record_missing_fields(self, tmp_path):
        path = tmp_path / "badtrace.jsonl"
        path.write_text(self.HEADER + '{"k": "trace", "slot": 3}\n')
        with pytest.raises(ConfigurationError, match="line 2.*trace"):
            read_run(path)

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "named.jsonl"
        path.write_text(self.HEADER + "{broken\n")
        with pytest.raises(ConfigurationError, match="named.jsonl"):
            read_run(path)
