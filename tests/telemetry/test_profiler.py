"""Unit tests for the per-slot wall-time profiler."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import SlotProfiler


def feed(profiler, slots=4):
    for slot in range(slots):
        profiler.record_slot(
            slot,
            node_s=0.001,
            resolve_s=0.003,
            observer_s=0.0005,
            transmissions=2,
            deliveries=3,
        )


class TestAggregation:
    def test_totals(self):
        profiler = SlotProfiler()
        feed(profiler)
        assert profiler.slots == 4
        assert profiler.node_s == pytest.approx(0.004)
        assert profiler.resolve_s == pytest.approx(0.012)
        assert profiler.transmissions == 8
        assert profiler.deliveries == 12

    def test_summary_shares_sum_to_one(self):
        profiler = SlotProfiler()
        feed(profiler)
        summary = profiler.summary()
        shares = (
            summary["node_share"]
            + summary["resolve_share"]
            + summary["observer_share"]
        )
        assert shares == pytest.approx(1.0)
        assert summary["resolve_share"] == pytest.approx(0.003 / 0.0045)

    def test_empty_summary_is_all_zero(self):
        summary = SlotProfiler().summary()
        assert summary["slots"] == 0
        assert summary["total_s"] == 0.0
        assert summary["resolve_share"] == 0.0
        assert summary["mean_slot_us"] == 0.0

    def test_rows_cover_sections_and_total(self):
        profiler = SlotProfiler()
        feed(profiler)
        sections = [row["section"] for row in profiler.rows()]
        assert sections == [
            "node callbacks", "channel resolve", "observers", "total",
        ]


class TestRetention:
    def test_unbounded_keeps_every_slot(self):
        profiler = SlotProfiler()
        feed(profiler, slots=10)
        assert len(profiler.records) == 10
        assert profiler.truncated == 0

    def test_max_records_caps_retention_not_aggregates(self):
        profiler = SlotProfiler(max_records=3)
        feed(profiler, slots=10)
        assert len(profiler.records) == 3
        assert profiler.truncated == 7
        assert profiler.slots == 10  # aggregates keep counting

    def test_negative_max_records_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotProfiler(max_records=-1)

    def test_record_round_trips_as_dict(self):
        profiler = SlotProfiler()
        feed(profiler, slots=1)
        record = profiler.records[0].as_record()
        assert record == {
            "slot": 0, "node_s": 0.001, "resolve_s": 0.003,
            "observer_s": 0.0005, "tx": 2, "rx": 3,
        }
