"""Tests for the programmatic experiments layer.

Full sweeps are the benches' business; here we check the package contract
(registry completeness, module interface) and run the two cheapest
experiments end to end through the library API.
"""

import pytest

from repro.experiments import REGISTRY
from repro.experiments import exp05_tdma_mac, exp07_palette_reduction


class TestRegistry:
    def test_all_fourteen_experiments_registered(self):
        assert set(REGISTRY) == {f"exp{i}" for i in range(1, 15)}

    @pytest.mark.parametrize("exp_id", sorted(REGISTRY))
    def test_module_interface(self, exp_id):
        module = REGISTRY[exp_id]
        assert isinstance(module.TITLE, str) and module.TITLE
        assert isinstance(module.COLUMNS, list) and module.COLUMNS
        assert callable(module.run)
        assert callable(module.run_single)
        assert callable(module.check)

    @pytest.mark.parametrize("exp_id", sorted(REGISTRY))
    def test_check_rejects_empty(self, exp_id):
        with pytest.raises(AssertionError):
            REGISTRY[exp_id].check([])


class TestEndToEnd:
    def test_exp5_via_library(self):
        rows = exp05_tdma_mac.run_single(seed=0)
        exp05_tdma_mac.check(rows)
        assert {row["scheme"] for row in rows} == {
            "tdma-dist-1",
            "tdma-dist-2",
            f"tdma-dist-{rows[2]['scheme'].split('-')[-1]}",
            "slotted-aloha",
        }

    def test_exp7_via_library(self):
        rows = [exp07_palette_reduction.run_single(seed=0)]
        exp07_palette_reduction.check(rows)
        assert set(exp07_palette_reduction.COLUMNS) <= set(rows[0])

    def test_exp5_columns_cover_rows(self):
        rows = exp05_tdma_mac.run_single(seed=1)
        for row in rows:
            assert set(exp05_tdma_mac.COLUMNS) <= set(row)
