"""The exception hierarchy and the public package surface."""

import pytest

import repro
from repro.errors import (
    ColoringError,
    ConfigurationError,
    DeploymentError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            ConfigurationError,
            DeploymentError,
            SimulationError,
            ProtocolError,
            ColoringError,
            ScheduleError,
        ],
    )
    def test_all_derive_from_base(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_base_is_exception(self):
        assert issubclass(ReproError, Exception)


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_key_entry_points_exported(self):
        for name in (
            "run_mw_coloring",
            "PhysicalParams",
            "UnitDiskGraph",
            "TDMASchedule",
            "verify_tdma_broadcast",
            "simulate_uniform_algorithm",
        ):
            assert name in repro.__all__
