"""Tests for the convergecast aggregation workload."""

import numpy as np
import pytest

from repro import (
    ConvergecastSum,
    PhysicalParams,
    TDMASchedule,
    UnitDiskGraph,
    greedy_coloring,
    power_graph,
    simulate_uniform_algorithm,
    uniform_deployment,
)
from repro.messaging.model import run_uniform_rounds


@pytest.fixture(scope="module")
def graph():
    dep = uniform_deployment(100, 6.0, seed=24)  # connected
    g = UnitDiskGraph(dep.positions, radius=1.0)
    assert g.is_connected()
    return g


class TestNative:
    def test_root_sums_component(self, graph):
        algos = [ConvergecastSum(root=0, value=1.0, horizon=15) for _ in range(graph.n)]
        report = run_uniform_rounds(graph, algos, max_rounds=80)
        assert report.halted
        assert algos[0].output() == pytest.approx(float(graph.n))

    def test_weighted_values(self, graph):
        algos = [
            ConvergecastSum(root=0, value=float(i), horizon=15)
            for i in range(graph.n)
        ]
        run_uniform_rounds(graph, algos, max_rounds=80)
        expected = sum(range(graph.n))
        assert algos[0].output() == pytest.approx(float(expected))

    def test_subtree_sums_partition(self, graph):
        algos = [ConvergecastSum(root=0, value=1.0, horizon=15) for _ in range(graph.n)]
        run_uniform_rounds(graph, algos, max_rounds=80)
        # the root's children's subtree sums + 1 equal the total
        root = algos[0]
        child_total = sum(root._child_sums.values())
        assert child_total + 1.0 == pytest.approx(root.output())

    def test_path_graph(self):
        positions = np.column_stack([np.arange(6) * 0.9, np.zeros(6)])
        graph = UnitDiskGraph(positions, radius=1.0)
        algos = [ConvergecastSum(root=0, value=2.0, horizon=8) for _ in range(6)]
        report = run_uniform_rounds(graph, algos, max_rounds=40)
        assert report.halted
        assert algos[0].output() == pytest.approx(12.0)

    def test_horizon_validated(self):
        with pytest.raises(Exception):
            ConvergecastSum(root=0, horizon=0)


class TestUnderSINR:
    def test_srs_sums_exactly(self, graph):
        params = PhysicalParams().with_r_t(1.0)
        coloring = greedy_coloring(power_graph(graph, params.mac_distance + 1))
        schedule = TDMASchedule(coloring)
        algos = [ConvergecastSum(root=0, value=1.0, horizon=15) for _ in range(graph.n)]
        report = simulate_uniform_algorithm(
            graph, algos, schedule, params, max_rounds=80
        )
        assert report.exact
        assert report.halted
        assert report.outputs[0] == pytest.approx(float(graph.n))
