"""Unit tests for the example message-passing algorithms."""

import collections

import numpy as np
import pytest

from repro.geometry.deployment import uniform_deployment
from repro.graphs.udg import UnitDiskGraph
from repro.messaging.algorithms import (
    BFSTreeAlgorithm,
    FloodingBroadcast,
    MaxIdLeaderElection,
)
from repro.messaging.model import run_uniform_rounds


@pytest.fixture(scope="module")
def graph():
    dep = uniform_deployment(70, 5.0, seed=31)
    return UnitDiskGraph(dep.positions, radius=1.0)


def bfs_distances(graph, root):
    dist = {root: 0}
    queue = collections.deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            v = int(v)
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


class TestFlooding:
    def test_everyone_in_component_receives(self, graph):
        algos = [FloodingBroadcast(source=0, value="fire") for _ in range(graph.n)]
        run_uniform_rounds(graph, algos, max_rounds=graph.n)
        dist = bfs_distances(graph, 0)
        for node in range(graph.n):
            if node in dist:
                assert algos[node].output() == ("fire", dist[node])
            else:
                assert algos[node].output() is None

    def test_hop_counts_are_bfs_distances(self, graph):
        algos = [FloodingBroadcast(source=3) for _ in range(graph.n)]
        run_uniform_rounds(graph, algos, max_rounds=graph.n)
        dist = bfs_distances(graph, 3)
        for node, expected in dist.items():
            assert algos[node].output()[1] == expected

    def test_rounds_equal_eccentricity_plus_one(self, graph):
        algos = [FloodingBroadcast(source=0) for _ in range(graph.n)]
        report = run_uniform_rounds(graph, algos, max_rounds=graph.n)
        dist = bfs_distances(graph, 0)
        if len(dist) == graph.n:  # connected: everything halts
            assert report.halted
            assert report.rounds == max(dist.values()) + 1


class TestBFSTree:
    def test_parents_form_shortest_path_tree(self, graph):
        algos = [BFSTreeAlgorithm(root=0) for _ in range(graph.n)]
        run_uniform_rounds(graph, algos, max_rounds=graph.n)
        dist = bfs_distances(graph, 0)
        assert algos[0].output() == (-1, 0)
        for node in range(1, graph.n):
            if node not in dist:
                assert algos[node].output() is None
                continue
            parent, depth = algos[node].output()
            assert depth == dist[node]
            assert graph.has_edge(node, int(parent))
            assert dist[int(parent)] == depth - 1


class TestLeaderElection:
    def test_agreement(self, graph):
        rounds = 30
        algos = [MaxIdLeaderElection(rounds=rounds) for _ in range(graph.n)]
        report = run_uniform_rounds(graph, algos, max_rounds=rounds + 1)
        assert report.halted
        for component in graph.connected_components():
            expected = int(component.max())
            for node in component:
                assert algos[int(node)].output() == expected

    def test_too_few_rounds_no_agreement_on_path(self):
        # a long path needs ~n rounds; 1 round only reaches direct neighbors
        positions = np.column_stack([np.arange(10) * 0.9, np.zeros(10)])
        graph = UnitDiskGraph(positions, radius=1.0)
        algos = [MaxIdLeaderElection(rounds=1) for _ in range(10)]
        run_uniform_rounds(graph, algos, max_rounds=2)
        assert algos[0].output() != 9

    def test_requires_positive_rounds(self):
        with pytest.raises(Exception):
            MaxIdLeaderElection(rounds=0)
