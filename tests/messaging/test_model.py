"""Unit tests for the round-based message passing engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graphs.udg import UnitDiskGraph
from repro.messaging.model import (
    GeneralAlgorithm,
    UniformAlgorithm,
    run_general_rounds,
    run_uniform_rounds,
)


def path_graph(n=4, spacing=0.8):
    positions = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
    return UnitDiskGraph(positions, radius=1.0)


class Echo(UniformAlgorithm):
    """Broadcasts its id in round 0; records everything; halts after round 1."""

    def __init__(self):
        self.ctx = None
        self.heard = []
        self.rounds = 0

    def on_start(self, ctx):
        self.ctx = ctx

    def send(self, round_index):
        self.rounds = round_index + 1
        return self.ctx.node if round_index == 0 else None

    def on_receive(self, round_index, sender, payload):
        self.heard.append((round_index, sender, payload))

    @property
    def halted(self):
        return self.rounds >= 2

    def output(self):
        return sorted(self.heard)


class Pairwise(GeneralAlgorithm):
    """Sends each neighbor its (my_id, their_id) pair in round 0."""

    def __init__(self):
        self.ctx = None
        self.heard = []
        self.done = False

    def on_start(self, ctx):
        self.ctx = ctx

    def send_to(self, round_index):
        self.done = True
        if round_index > 0:
            return {}
        return {v: (self.ctx.node, v) for v in self.ctx.neighbors}

    def on_receive(self, round_index, sender, payload):
        self.heard.append(payload)

    @property
    def halted(self):
        return self.done


class TestUniform:
    def test_neighbors_hear_broadcast(self):
        graph = path_graph(3)
        algos = [Echo() for _ in range(3)]
        report = run_uniform_rounds(graph, algos, max_rounds=10)
        assert report.halted
        assert algos[1].heard == [(0, 0, 0), (0, 2, 2)]
        assert algos[0].heard == [(0, 1, 1)]

    def test_stops_at_halt(self):
        graph = path_graph(3)
        algos = [Echo() for _ in range(3)]
        report = run_uniform_rounds(graph, algos, max_rounds=50)
        assert report.rounds == 2

    def test_counts_messages(self):
        graph = path_graph(3)  # edges: 0-1, 1-2
        algos = [Echo() for _ in range(3)]
        report = run_uniform_rounds(graph, algos, max_rounds=10)
        assert report.messages_sent == 4  # each broadcast fans to neighbors

    def test_max_rounds_cap(self):
        class Never(Echo):
            @property
            def halted(self):
                return False

        graph = path_graph(2)
        report = run_uniform_rounds(graph, [Never(), Never()], max_rounds=5)
        assert report.rounds == 5
        assert not report.halted

    def test_instance_count_validated(self):
        graph = path_graph(3)
        with pytest.raises(SimulationError):
            run_uniform_rounds(graph, [Echo()], max_rounds=1)

    def test_on_start_receives_context(self):
        graph = path_graph(3)
        algos = [Echo() for _ in range(3)]
        run_uniform_rounds(graph, algos, max_rounds=1)
        assert algos[1].ctx.neighbors == (0, 2)
        assert algos[1].ctx.n == 3


class TestGeneral:
    def test_individual_payloads(self):
        graph = path_graph(3)
        algos = [Pairwise() for _ in range(3)]
        report = run_general_rounds(graph, algos, max_rounds=5)
        assert report.halted
        assert sorted(algos[1].heard) == [(0, 1), (2, 1)]

    def test_addressing_non_neighbor_rejected(self):
        class Bad(Pairwise):
            def send_to(self, round_index):
                self.done = True
                return {self.ctx.node: "self"}  # never a neighbor

        graph = path_graph(2)
        with pytest.raises(SimulationError):
            run_general_rounds(graph, [Bad(), Bad()], max_rounds=2)

    def test_message_count(self):
        graph = path_graph(3)
        algos = [Pairwise() for _ in range(3)]
        report = run_general_rounds(graph, algos, max_rounds=5)
        assert report.messages_sent == 4
