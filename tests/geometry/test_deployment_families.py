"""Tests for the corridor and ring deployment families."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.deployment import corridor_deployment, ring_deployment
from repro.graphs.bfs import diameter
from repro.graphs.udg import UnitDiskGraph


class TestCorridor:
    def test_inside_bounds(self):
        dep = corridor_deployment(100, length=30.0, width=1.5, seed=0)
        assert dep.positions[:, 0].min() >= 0.0
        assert dep.positions[:, 0].max() <= 30.0
        assert dep.positions[:, 1].max() <= 1.5

    def test_long_diameter(self):
        dep = corridor_deployment(120, length=30.0, width=1.0, seed=1)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        if graph.is_connected():
            assert diameter(graph) >= 15  # near-1D chain

    def test_deterministic(self):
        a = corridor_deployment(20, 10.0, 1.0, seed=5)
        b = corridor_deployment(20, 10.0, 1.0, seed=5)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_metadata(self):
        dep = corridor_deployment(10, 10.0, 2.0, seed=0)
        assert dep.kind == "corridor"
        assert dep.metadata == {"length": 10.0, "width": 2.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            corridor_deployment(0, 10.0, 1.0, seed=0)
        with pytest.raises(ConfigurationError):
            corridor_deployment(5, 10.0, 0.0, seed=0)


class TestRing:
    def test_points_near_circle(self):
        dep = ring_deployment(60, radius=5.0, jitter=0.0, seed=0)
        center = np.array([5.0, 5.0])
        radii = np.hypot(*(dep.positions - center).T)
        np.testing.assert_allclose(radii, 5.0, atol=1e-9)

    def test_jitter_spreads_radially(self):
        dep = ring_deployment(200, radius=5.0, jitter=0.3, seed=1)
        center = np.array([5.0, 5.0])
        radii = np.hypot(*(dep.positions - center).T)
        assert radii.std() > 0.1

    def test_angles_sorted_for_chain_structure(self):
        dep = ring_deployment(50, radius=5.0, jitter=0.0, seed=2)
        center = np.array([5.0, 5.0])
        angles = np.arctan2(*(dep.positions - center).T[::-1])
        # sorted angles modulo the wrap point
        wraps = int(np.sum(np.diff(angles) < 0))
        assert wraps <= 1

    def test_dense_ring_is_cycle_like(self):
        dep = ring_deployment(80, radius=5.0, jitter=0.0, seed=3)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        # random angular gaps can exceed the radius occasionally, but the
        # typical node sits in a chain with neighbors on both sides
        assert np.median(graph.degrees) >= 2
        # and nobody is adjacent to the far side of the ring
        assert graph.max_degree < 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ring_deployment(10, radius=0.0, jitter=0.1, seed=0)
        with pytest.raises(ConfigurationError):
            ring_deployment(10, radius=1.0, jitter=-0.1, seed=0)


class TestProtocolOnNewFamilies:
    def test_mw_on_corridor(self):
        from repro import PhysicalParams
        from repro.coloring.runner import run_mw_coloring_audited

        params = PhysicalParams().with_r_t(1.0)
        dep = corridor_deployment(60, length=20.0, width=1.2, seed=4)
        result, auditor = run_mw_coloring_audited(dep, params, seed=3)
        assert result.stats.completed
        assert result.is_proper()
        assert auditor.clean

    def test_mw_on_ring(self):
        from repro import PhysicalParams
        from repro.coloring.runner import run_mw_coloring_audited

        params = PhysicalParams().with_r_t(1.0)
        dep = ring_deployment(60, radius=6.0, jitter=0.2, seed=4)
        result, auditor = run_mw_coloring_audited(dep, params, seed=3)
        assert result.stats.completed
        assert result.is_proper()
        assert auditor.clean
