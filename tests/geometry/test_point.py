"""Unit tests for distance computations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import (
    as_positions,
    chebyshev_distance,
    distance,
    distance_matrix,
    pairwise_distances,
)


class TestAsPositions:
    def test_accepts_list_of_pairs(self):
        array = as_positions([[0, 0], [1, 2]])
        assert array.shape == (2, 2)
        assert array.dtype == np.float64

    def test_empty_input_gives_zero_rows(self):
        assert as_positions([]).shape == (0, 2)

    def test_rejects_wrong_width(self):
        with pytest.raises(ConfigurationError):
            as_positions([[1, 2, 3]])

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            as_positions([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            as_positions([[np.inf, 0.0]])

    def test_rejects_scalar(self):
        with pytest.raises(ConfigurationError):
            as_positions(3.0)


class TestDistance:
    def test_pythagorean_triple(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert distance((2.5, -1), (2.5, -1)) == 0.0

    def test_symmetry(self):
        p, q = (1.2, 3.4), (-0.7, 9.1)
        assert distance(p, q) == pytest.approx(distance(q, p))

    def test_accepts_numpy_points(self):
        p = np.array([1.0, 1.0])
        q = np.array([4.0, 5.0])
        assert distance(p, q) == pytest.approx(5.0)


class TestChebyshev:
    def test_dominant_axis(self):
        assert chebyshev_distance((0, 0), (3, 1)) == pytest.approx(3.0)

    def test_is_lower_bound_of_euclidean(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p, q = rng.uniform(-5, 5, size=(2, 2))
            assert chebyshev_distance(p, q) <= distance(p, q) + 1e-12


class TestDistanceMatrix:
    def test_shape(self):
        a = np.zeros((3, 2))
        b = np.ones((4, 2))
        assert distance_matrix(a, b).shape == (3, 4)

    def test_values(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0], [0.0, 1.0]])
        matrix = distance_matrix(a, b)
        assert matrix[0, 0] == pytest.approx(5.0)
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_matches_scalar_distance(self):
        rng = np.random.default_rng(7)
        a = rng.uniform(0, 10, size=(5, 2))
        b = rng.uniform(0, 10, size=(6, 2))
        matrix = distance_matrix(a, b)
        for i in range(5):
            for j in range(6):
                assert matrix[i, j] == pytest.approx(distance(a[i], b[j]))


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 4, size=(8, 2))
        matrix = pairwise_distances(points)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 4, size=(6, 2))
        matrix = pairwise_distances(points)
        for i in range(6):
            for j in range(6):
                for k in range(6):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-9
