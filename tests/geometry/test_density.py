"""Unit tests for the packing parameter phi(R)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.density import phi_empirical, phi_upper_bound
from repro.geometry.deployment import grid_deployment, uniform_deployment


class TestPhiUpperBound:
    def test_formula(self):
        # (2R/R_T + 1)^2 with R = 2, R_T = 1 -> 25
        assert phi_upper_bound(2.0, 1.0) == 25

    def test_zero_radius(self):
        # a disc of radius 0 still contains the centre node
        assert phi_upper_bound(0.0, 1.0) == 1

    def test_monotone_in_radius(self):
        values = [phi_upper_bound(r, 1.0) for r in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert values == sorted(values)

    def test_scale_invariance(self):
        # phi depends only on the ratio R / R_T
        assert phi_upper_bound(3.0, 1.0) == phi_upper_bound(6.0, 2.0)

    def test_rejects_nonpositive_rt(self):
        with pytest.raises(ConfigurationError):
            phi_upper_bound(1.0, 0.0)


class TestPhiEmpirical:
    def test_bounded_by_analytic(self):
        dep = uniform_deployment(300, 8.0, seed=5)
        for radius in (1.0, 2.0, 3.0):
            measured = phi_empirical(dep.positions, radius, 1.0)
            assert measured <= phi_upper_bound(radius, 1.0)

    def test_sparse_points_give_count(self):
        # three mutually independent points within the disc of radius 3
        positions = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        assert phi_empirical(positions, 3.0, 1.0) == 3

    def test_single_point(self):
        assert phi_empirical(np.array([[1.0, 1.0]]), 2.0, 1.0) == 1

    def test_empty(self):
        assert phi_empirical(np.zeros((0, 2)), 2.0, 1.0) == 0

    def test_coincident_points_pack_one(self):
        positions = np.zeros((10, 2))
        assert phi_empirical(positions, 1.0, 1.0) == 1

    def test_grid_packing(self):
        # unit grid with spacing 1.01 > R_T = 1: all nodes are independent,
        # so phi(R) counts the nodes within radius R of the densest centre.
        dep = grid_deployment(side=7, spacing=1.01)
        measured = phi_empirical(dep.positions, 1.5, 1.0)
        # centre node + 4 axis neighbors fit in radius 1.5 (diagonal is 1.43)
        assert measured >= 5

    def test_sampling_never_exceeds_full_scan(self):
        dep = uniform_deployment(150, 6.0, seed=3)
        full = phi_empirical(dep.positions, 2.0, 1.0)
        sampled = phi_empirical(dep.positions, 2.0, 1.0, sample=30, seed=1)
        assert sampled <= full
