"""Unit tests for discs and annuli."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.region import Annulus, Disc


class TestDisc:
    def test_area(self):
        assert Disc(0, 0, 2.0).area == pytest.approx(4 * math.pi)

    def test_contains_boundary(self):
        disc = Disc(0, 0, 1.0)
        assert disc.contains((1.0, 0.0))  # closed disc

    def test_contains_interior_and_exterior(self):
        disc = Disc(1, 1, 1.0)
        assert disc.contains((1.5, 1.0))
        assert not disc.contains((2.5, 1.0))

    def test_contains_many_matches_scalar(self):
        disc = Disc(0.5, -0.5, 1.3)
        rng = np.random.default_rng(2)
        points = rng.uniform(-2, 2, size=(40, 2))
        mask = disc.contains_many(points)
        for point, inside in zip(points, mask):
            assert inside == disc.contains(point)

    def test_center_array(self):
        np.testing.assert_allclose(Disc(3, 4, 1).center, [3.0, 4.0])

    def test_rejects_negative_radius(self):
        with pytest.raises(ConfigurationError):
            Disc(0, 0, -1.0)

    def test_zero_radius_contains_only_center(self):
        disc = Disc(2, 2, 0.0)
        assert disc.contains((2, 2))
        assert not disc.contains((2, 2.001))


class TestAnnulus:
    def test_area(self):
        ring = Annulus(0, 0, 1.0, 2.0)
        assert ring.area == pytest.approx(math.pi * 3.0)

    def test_contains(self):
        ring = Annulus(0, 0, 1.0, 2.0)
        assert ring.contains((1.5, 0))
        assert ring.contains((1.0, 0))  # closed on both boundaries
        assert ring.contains((2.0, 0))
        assert not ring.contains((0.5, 0))
        assert not ring.contains((2.5, 0))

    def test_contains_many_matches_scalar(self):
        ring = Annulus(1, 1, 0.5, 1.5)
        rng = np.random.default_rng(4)
        points = rng.uniform(-1, 3, size=(40, 2))
        mask = ring.contains_many(points)
        for point, inside in zip(points, mask):
            assert inside == ring.contains(point)

    def test_expanded_matches_paper_extension(self):
        # R_l^+ of Lemma 3: grow both sides by R_T / 2.
        ring = Annulus(0, 0, 3.0, 4.0)
        extended = ring.expanded(0.5)
        assert extended.inner == pytest.approx(2.5)
        assert extended.outer == pytest.approx(4.5)

    def test_expanded_clamps_inner_at_zero(self):
        ring = Annulus(0, 0, 0.2, 1.0)
        assert ring.expanded(0.5).inner == 0.0

    def test_rejects_inverted_radii(self):
        with pytest.raises(ConfigurationError):
            Annulus(0, 0, 2.0, 1.0)

    def test_degenerate_ring_is_circle(self):
        ring = Annulus(0, 0, 1.0, 1.0)
        assert ring.area == pytest.approx(0.0)
        assert ring.contains((1, 0))
