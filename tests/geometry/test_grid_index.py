"""Unit tests for the uniform grid spatial index."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.grid_index import GridIndex


def brute_force_disc(positions, center, radius):
    diff = positions - np.asarray(center)[None, :]
    return np.flatnonzero(np.einsum("ij,ij->i", diff, diff) <= radius * radius)


class TestQueryDisc:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 10, size=(200, 2))
        index = GridIndex(positions, cell_size=1.0)
        for _ in range(25):
            center = rng.uniform(0, 10, size=2)
            radius = rng.uniform(0.1, 3.0)
            expected = brute_force_disc(positions, center, radius)
            np.testing.assert_array_equal(
                index.query_disc(center, radius), expected
            )

    def test_zero_radius_finds_exact_point(self):
        positions = np.array([[1.0, 1.0], [2.0, 2.0]])
        index = GridIndex(positions, cell_size=0.5)
        np.testing.assert_array_equal(index.query_disc((1.0, 1.0), 0.0), [0])

    def test_far_query_is_empty(self):
        positions = np.array([[0.0, 0.0]])
        index = GridIndex(positions, cell_size=1.0)
        assert index.query_disc((100.0, 100.0), 1.0).size == 0

    def test_negative_radius_rejected(self):
        index = GridIndex(np.zeros((1, 2)), cell_size=1.0)
        with pytest.raises(ConfigurationError):
            index.query_disc((0, 0), -1.0)

    def test_negative_coordinates_supported(self):
        positions = np.array([[-5.0, -5.0], [-4.5, -5.0], [5.0, 5.0]])
        index = GridIndex(positions, cell_size=1.0)
        found = index.query_disc((-5.0, -5.0), 1.0)
        np.testing.assert_array_equal(found, [0, 1])

    def test_results_sorted(self):
        rng = np.random.default_rng(9)
        positions = rng.uniform(0, 5, size=(60, 2))
        index = GridIndex(positions, cell_size=0.7)
        found = index.query_disc((2.5, 2.5), 2.0)
        assert np.all(np.diff(found) > 0)


class TestQueryAnnulus:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        positions = rng.uniform(0, 8, size=(150, 2))
        index = GridIndex(positions, cell_size=1.0)
        center = (4.0, 4.0)
        inner, outer = 1.0, 3.0
        diff = positions - np.asarray(center)[None, :]
        sq = np.einsum("ij,ij->i", diff, diff)
        expected = np.flatnonzero((sq >= inner**2) & (sq <= outer**2))
        np.testing.assert_array_equal(
            index.query_annulus(center, inner, outer), expected
        )

    def test_rejects_inverted_radii(self):
        index = GridIndex(np.zeros((1, 2)), cell_size=1.0)
        with pytest.raises(ConfigurationError):
            index.query_annulus((0, 0), 2.0, 1.0)


class TestNeighbors:
    def test_excludes_self(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [3.0, 3.0]])
        index = GridIndex(positions, cell_size=1.0)
        np.testing.assert_array_equal(index.neighbors_within(0, 1.0), [1])

    def test_iter_pairs_each_once(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [0.9, 0.0], [5.0, 5.0]])
        index = GridIndex(positions, cell_size=1.0)
        pairs = sorted(index.iter_pairs_within(1.0))
        assert pairs == [(0, 1), (0, 2), (1, 2)]

    def test_len(self):
        index = GridIndex(np.zeros((7, 2)), cell_size=1.0)
        assert len(index) == 7

    def test_cell_size_validation(self):
        with pytest.raises(ConfigurationError):
            GridIndex(np.zeros((1, 2)), cell_size=0.0)

    def test_coincident_points_all_found(self):
        positions = np.zeros((5, 2))
        index = GridIndex(positions, cell_size=1.0)
        assert index.query_disc((0, 0), 0.1).size == 5
