"""Unit tests for deployment generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeploymentError
from repro.geometry.deployment import (
    Deployment,
    clustered_deployment,
    grid_deployment,
    perturbed_grid_deployment,
    poisson_deployment,
    uniform_deployment,
)


class TestDeployment:
    def test_positions_frozen(self):
        dep = uniform_deployment(10, 5.0, seed=0)
        with pytest.raises(ValueError):
            dep.positions[0, 0] = 99.0

    def test_len_and_n(self):
        dep = uniform_deployment(17, 5.0, seed=0)
        assert len(dep) == 17
        assert dep.n == 17

    def test_subset_preserves_order(self):
        dep = uniform_deployment(10, 5.0, seed=0)
        sub = dep.subset([4, 2, 7])
        np.testing.assert_allclose(sub.positions[0], dep.positions[4])
        np.testing.assert_allclose(sub.positions[1], dep.positions[2])
        assert sub.n == 3

    def test_invalid_extent(self):
        with pytest.raises(ConfigurationError):
            Deployment(np.zeros((1, 2)), extent=0.0)


class TestUniform:
    def test_inside_square(self):
        dep = uniform_deployment(200, 7.0, seed=1)
        assert dep.positions.min() >= 0.0
        assert dep.positions.max() <= 7.0

    def test_deterministic_per_seed(self):
        a = uniform_deployment(50, 5.0, seed=42)
        b = uniform_deployment(50, 5.0, seed=42)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a = uniform_deployment(50, 5.0, seed=1)
        b = uniform_deployment(50, 5.0, seed=2)
        assert not np.array_equal(a.positions, b.positions)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            uniform_deployment(0, 5.0, seed=0)

    def test_metadata_kind(self):
        assert uniform_deployment(5, 5.0, seed=0).kind == "uniform"


class TestPoisson:
    def test_mean_count_near_intensity_times_area(self):
        counts = [
            poisson_deployment(intensity=2.0, extent=10.0, seed=s).n
            for s in range(20)
        ]
        mean = sum(counts) / len(counts)
        assert 150 < mean < 250  # expected 200

    def test_zero_realisation_raises(self):
        # With a tiny window the Poisson count is almost surely 0; find a
        # seed that realises it and assert the error.
        with pytest.raises(DeploymentError):
            for seed in range(100):
                poisson_deployment(intensity=1e-9, extent=0.001, seed=seed)

    def test_records_intensity(self):
        dep = poisson_deployment(intensity=3.0, extent=5.0, seed=0)
        assert dep.metadata["intensity"] == 3.0


class TestGrid:
    def test_count_and_spacing(self):
        dep = grid_deployment(side=4, spacing=2.0)
        assert dep.n == 16
        # nearest-neighbor distance is exactly the spacing
        diffs = dep.positions[1] - dep.positions[0]
        assert np.hypot(*diffs) == pytest.approx(2.0)

    def test_deterministic(self):
        a = grid_deployment(3, 1.0)
        b = grid_deployment(3, 1.0)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_single_point(self):
        assert grid_deployment(1, 1.0).n == 1


class TestPerturbedGrid:
    def test_zero_jitter_equals_grid(self):
        base = grid_deployment(4, 1.5)
        jittered = perturbed_grid_deployment(4, 1.5, jitter=0.0, seed=3)
        np.testing.assert_allclose(jittered.positions, base.positions)

    def test_jitter_bounded(self):
        base = grid_deployment(5, 2.0)
        jittered = perturbed_grid_deployment(5, 2.0, jitter=0.3, seed=3)
        assert np.abs(jittered.positions - base.positions).max() <= 0.3

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            perturbed_grid_deployment(3, 1.0, jitter=-0.1, seed=0)


class TestClustered:
    def test_count(self):
        dep = clustered_deployment(5, 8, extent=10.0, cluster_radius=0.5, seed=0)
        assert dep.n == 40

    def test_clusters_are_dense(self):
        dep = clustered_deployment(3, 20, extent=50.0, cluster_radius=0.4, seed=1)
        # members of the first cluster sit close to their centroid
        first = dep.positions[:20]
        centroid = first.mean(axis=0)
        spread = np.hypot(*(first - centroid).T)
        assert np.median(spread) < 1.0

    def test_metadata(self):
        dep = clustered_deployment(2, 3, extent=5.0, cluster_radius=0.5, seed=0)
        assert dep.metadata["clusters"] == 2
        assert dep.metadata["points_per_cluster"] == 3
