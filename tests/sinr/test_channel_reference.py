"""Differential tests: vectorised channels vs naive reference resolvers.

The fast engine rewrites the numerical core every theorem check depends
on, so each channel's semantics is re-implemented here as a deliberately
naive O(n * k) Python loop — no NumPy vectorisation, no shared distance
matrix, Euclidean distances via ``math.dist`` — and the fast path is
required to produce the *identical* delivery set on a large corpus of
seeded random scenarios:

* varying node count, density, and sender fraction,
* half-duplex on and off,
* coincident nodes (exercising the SINR near-field floor),
* empty and singleton sender sets.

Tie-breaking is part of the contract: where several senders are equally
strong/near, the one earliest in transmission order wins (``np.argmax`` /
``np.argmin`` both return the first maximal index, as do Python's
``max``/``min``), so references and fast paths agree exactly even on
degenerate geometry.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sinr.channel import (
    CollisionFreeChannel,
    Delivery,
    GraphChannel,
    ProtocolChannel,
    SINRChannel,
    Transmission,
)
from repro.sinr.params import PhysicalParams

PARAMS = PhysicalParams().with_r_t(1.0)
SCENARIO_SEEDS = range(60)


# -- naive reference resolvers -------------------------------------------------


def reference_sinr(positions, params, transmissions, half_duplex=True):
    """Loop-based SINR semantics: strongest in-range sender beats the SINR bar."""
    deliveries = []
    sender_set = {t.sender for t in transmissions}
    floor = params.r_t * 1e-6
    for u in range(len(positions)):
        if half_duplex and u in sender_set:
            continue
        received = []
        for t in transmissions:
            if t.sender == u:
                received.append(0.0)  # own signal: neither signal nor interference
            else:
                gap = max(math.dist(positions[u], positions[t.sender]), floor)
                received.append(params.power / gap**params.alpha)
        if not received:
            continue
        best = max(range(len(received)), key=lambda j: received[j])
        best_power = received[best]
        if best_power <= 0.0:
            continue
        gap = max(math.dist(positions[u], positions[transmissions[best].sender]), floor)
        if gap > params.r_t:
            continue
        interference = sum(received) - best_power
        if best_power >= params.beta * (params.noise + interference):
            deliveries.append(
                Delivery(u, transmissions[best].sender, transmissions[best].payload)
            )
    return deliveries


def reference_graph(positions, radius, transmissions, half_duplex=True):
    """Loop-based graph semantics: exactly one transmitting neighbour."""
    deliveries = []
    sender_set = {t.sender for t in transmissions}
    for u in range(len(positions)):
        if half_duplex and u in sender_set:
            continue
        hitters = [
            t
            for t in transmissions
            if t.sender != u and math.dist(positions[u], positions[t.sender]) <= radius
        ]
        if len(hitters) == 1:
            deliveries.append(Delivery(u, hitters[0].sender, hitters[0].payload))
    return deliveries


def reference_protocol(positions, radius, guard, transmissions, half_duplex=True):
    """Loop-based protocol semantics: nearest in range, empty guard zone."""
    deliveries = []
    sender_set = {t.sender for t in transmissions}
    guard_radius = (1.0 + guard) * radius
    for u in range(len(positions)):
        if half_duplex and u in sender_set:
            continue
        others = [t for t in transmissions if t.sender != u]
        if not others:
            continue
        gaps = [math.dist(positions[u], positions[t.sender]) for t in others]
        nearest = min(range(len(others)), key=lambda j: gaps[j])
        if gaps[nearest] > radius:
            continue
        if sum(1 for gap in gaps if gap <= guard_radius) != 1:
            continue
        deliveries.append(Delivery(u, others[nearest].sender, others[nearest].payload))
    return deliveries


def reference_collision_free(positions, radius, transmissions, half_duplex=True):
    """Loop-based oracle semantics: nearest sender within range always decodes."""
    deliveries = []
    sender_set = {t.sender for t in transmissions}
    for u in range(len(positions)):
        if half_duplex and u in sender_set:
            continue
        others = [t for t in transmissions if t.sender != u]
        if not others:
            continue
        gaps = [math.dist(positions[u], positions[t.sender]) for t in others]
        nearest = min(range(len(others)), key=lambda j: gaps[j])
        if gaps[nearest] <= radius:
            deliveries.append(
                Delivery(u, others[nearest].sender, others[nearest].payload)
            )
    return deliveries


# -- scenario corpus -----------------------------------------------------------


def random_scenario(seed: int):
    """One seeded scenario: positions, transmissions, half-duplex flag.

    Mixes sizes, densities and sender fractions; with some probability
    collapses a few nodes onto shared coordinates so the near-field floor
    and exact distance ties are exercised.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 64))
    extent = float(rng.uniform(1.5, 8.0))
    positions = rng.uniform(0.0, extent, size=(n, 2))
    if n >= 4 and rng.random() < 0.35:
        # coincident pairs: duplicate up to two coordinates exactly
        for _ in range(int(rng.integers(1, 3))):
            a, b = rng.choice(n, size=2, replace=False)
            positions[b] = positions[a]
    fraction = float(rng.uniform(0.05, 0.7))
    k = max(1, int(round(fraction * n)))
    senders = rng.choice(n, size=k, replace=False)
    transmissions = [Transmission(int(s), ("payload", int(s))) for s in senders]
    half_duplex = bool(rng.random() < 0.5)
    return positions, transmissions, half_duplex


def as_set(deliveries):
    return {(d.receiver, d.sender, d.payload) for d in deliveries}


# -- differential suites -------------------------------------------------------


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_sinr_matches_reference(seed):
    positions, transmissions, half_duplex = random_scenario(seed)
    fast = SINRChannel(positions, PARAMS, half_duplex=half_duplex)
    assert as_set(fast.resolve(transmissions)) == as_set(
        reference_sinr(positions, PARAMS, transmissions, half_duplex)
    )


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_graph_matches_reference(seed):
    positions, transmissions, half_duplex = random_scenario(seed)
    fast = GraphChannel(positions, PARAMS.r_t, half_duplex=half_duplex)
    assert as_set(fast.resolve(transmissions)) == as_set(
        reference_graph(positions, PARAMS.r_t, transmissions, half_duplex)
    )


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_protocol_matches_reference(seed):
    positions, transmissions, half_duplex = random_scenario(seed)
    guard = float(np.random.default_rng(seed + 10_000).uniform(0.0, 1.0))
    fast = ProtocolChannel(
        positions, PARAMS.r_t, guard=guard, half_duplex=half_duplex
    )
    assert as_set(fast.resolve(transmissions)) == as_set(
        reference_protocol(positions, PARAMS.r_t, guard, transmissions, half_duplex)
    )


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_collision_free_matches_reference(seed):
    positions, transmissions, half_duplex = random_scenario(seed)
    fast = CollisionFreeChannel(positions, PARAMS.r_t, half_duplex=half_duplex)
    assert as_set(fast.resolve(transmissions)) == as_set(
        reference_collision_free(positions, PARAMS.r_t, transmissions, half_duplex)
    )


@pytest.mark.parametrize("seed", range(12))
def test_sinr_cached_resolution_matches_reference(seed):
    """The sender-set cache must not change semantics — resolve the same
    transmissions repeatedly with caching on and compare every round."""
    positions, transmissions, half_duplex = random_scenario(seed)
    fast = SINRChannel(positions, PARAMS, half_duplex=half_duplex, cache_slots=4)
    expected = as_set(reference_sinr(positions, PARAMS, transmissions, half_duplex))
    for _ in range(3):
        assert as_set(fast.resolve(transmissions)) == expected
    info = fast.engine.cache_info()
    assert info.hits == 2 and info.misses == 1


class TestDegenerateSenderSets:
    """Empty and singleton sender sets, on every channel type."""

    def channels(self, positions):
        return [
            SINRChannel(positions, PARAMS),
            GraphChannel(positions, PARAMS.r_t),
            ProtocolChannel(positions, PARAMS.r_t, guard=0.5),
            CollisionFreeChannel(positions, PARAMS.r_t),
        ]

    def test_empty_sender_set(self):
        positions = np.random.default_rng(0).uniform(0, 3, size=(10, 2))
        for channel in self.channels(positions):
            assert channel.resolve([]) == []

    def test_singleton_sender_reaches_neighbors(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [5.0, 5.0]])
        for channel in self.channels(positions):
            deliveries = channel.resolve([Transmission(0, "x")])
            assert [(d.receiver, d.sender) for d in deliveries] == [(1, 0)]

    def test_single_node_transmitting_alone(self):
        positions = np.array([[0.0, 0.0]])
        for channel in self.channels(positions):
            assert channel.resolve([Transmission(0, "x")]) == []

    def test_all_nodes_transmitting_half_duplex(self):
        positions = np.random.default_rng(1).uniform(0, 2, size=(6, 2))
        transmissions = [Transmission(i, i) for i in range(6)]
        for channel in self.channels(positions):
            assert channel.resolve(transmissions) == []


class TestCoincidentNodes:
    """Near-field-floor semantics on exactly coincident coordinates."""

    def test_single_coincident_sender_decodes_enormous_sinr(self):
        # receiver exactly on top of the only sender: floor clamps the
        # distance, SINR is astronomically high, message received
        positions = np.array([[1.0, 1.0], [1.0, 1.0]])
        channel = SINRChannel(positions, PARAMS)
        deliveries = channel.resolve([Transmission(0, "x")])
        assert [(d.receiver, d.sender) for d in deliveries] == [(1, 0)]

    def test_two_coincident_senders_jam_each_other(self):
        # matches the reference exactly: both powers equal, ratio 1 < beta
        positions = np.array([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])
        transmissions = [Transmission(0, "a"), Transmission(1, "b")]
        fast = SINRChannel(positions, PARAMS)
        assert fast.resolve(transmissions) == []
        assert reference_sinr(positions, PARAMS, transmissions) == []

    def test_coincident_scenarios_match_reference(self):
        # a denser sweep of duplicated-coordinate scenarios
        for seed in range(20):
            rng = np.random.default_rng(seed)
            base = rng.uniform(0, 2, size=(5, 2))
            positions = np.vstack([base, base[:2]])  # nodes 5,6 coincide with 0,1
            k = int(rng.integers(1, 5))
            senders = rng.choice(7, size=k, replace=False)
            transmissions = [Transmission(int(s), int(s)) for s in senders]
            fast = SINRChannel(positions, PARAMS)
            assert as_set(fast.resolve(transmissions)) == as_set(
                reference_sinr(positions, PARAMS, transmissions)
            )


class TestDistancesComputedOncePerSlot:
    """The seed computed the dense distance matrix twice per SINR slot;
    the engine's miss counter proves it now happens exactly once."""

    def test_sinr_resolve_computes_geometry_once(self):
        rng = np.random.default_rng(7)
        positions = rng.uniform(0, 5, size=(40, 2))
        channel = SINRChannel(positions, PARAMS)
        transmissions = [Transmission(int(s), "x") for s in range(0, 40, 7)]
        before = channel.engine.cache_info()
        deliveries = channel.resolve(transmissions)
        after = channel.engine.cache_info()
        # exactly one geometry build for the slot, and the result matches
        # the naive reference built from per-pair distances
        assert after.misses - before.misses == 1
        assert as_set(deliveries) == as_set(
            reference_sinr(positions, PARAMS, transmissions)
        )

    def test_dense_channels_compute_geometry_once(self):
        rng = np.random.default_rng(8)
        positions = rng.uniform(0, 4, size=(30, 2))
        transmissions = [Transmission(int(s), "x") for s in (0, 3, 9, 17)]
        for channel in (
            ProtocolChannel(positions, PARAMS.r_t, guard=0.5),
            CollisionFreeChannel(positions, PARAMS.r_t),
        ):
            channel.resolve(transmissions)
            assert channel.engine.cache_info().misses == 1
