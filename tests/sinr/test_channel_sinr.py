"""Unit tests for the SINR channel."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sinr.channel import SINRChannel, Transmission
from repro.sinr.params import PhysicalParams


@pytest.fixture()
def params():
    return PhysicalParams().with_r_t(1.0)


def channel_for(positions, params, **kwargs):
    return SINRChannel(np.asarray(positions, dtype=float), params, **kwargs)


class TestSingleSender:
    def test_neighbor_receives(self, params):
        channel = channel_for([[0, 0], [0.5, 0]], params)
        deliveries = channel.resolve([Transmission(0, "hello")])
        assert len(deliveries) == 1
        d = deliveries[0]
        assert (d.receiver, d.sender, d.payload) == (1, 0, "hello")

    def test_out_of_range_silent(self, params):
        channel = channel_for([[0, 0], [1.5, 0]], params)
        assert channel.resolve([Transmission(0, "x")]) == []

    def test_boundary_at_rt_received(self, params):
        channel = channel_for([[0, 0], [1.0, 0]], params)
        assert len(channel.resolve([Transmission(0, "x")])) == 1

    def test_between_rt_and_rmax_not_received(self, params):
        # decodable by raw SINR but beyond the paper's R_T margin
        r = (params.r_t + params.r_max) / 2
        channel = channel_for([[0, 0], [r, 0]], params)
        assert channel.resolve([Transmission(0, "x")]) == []

    def test_broadcast_reaches_all_neighbors(self, params):
        channel = channel_for([[0, 0], [0.5, 0], [0, 0.5], [3, 3]], params)
        deliveries = channel.resolve([Transmission(0, "x")])
        receivers = sorted(d.receiver for d in deliveries)
        assert receivers == [1, 2]

    def test_no_transmissions(self, params):
        channel = channel_for([[0, 0]], params)
        assert channel.resolve([]) == []


class TestInterference:
    def test_two_nearby_senders_collide(self, params):
        # receiver between two equidistant senders: SINR = 1 < beta = 2
        channel = channel_for([[0, 0], [1.0, 0], [2.0, 0]], params)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(2, "b")])
        assert all(d.receiver != 1 for d in deliveries)

    def test_far_interferer_tolerated(self, params):
        # interferer 10 R_T away contributes ~1e-4 of the budget
        channel = channel_for([[0, 0], [0.5, 0], [10.0, 0], [10.5, 0]], params)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(3, "b")])
        receivers = {d.receiver for d in deliveries}
        assert 1 in receivers

    def test_near_far_capture(self, params):
        # a close sender survives a distant simultaneous one (capture effect)
        channel = channel_for([[0, 0], [0.2, 0], [4.0, 0]], params)
        deliveries = channel.resolve([Transmission(0, "near"), Transmission(2, "far")])
        by_receiver = {d.receiver: d for d in deliveries}
        assert by_receiver[1].sender == 0

    def test_additivity_many_weak_interferers_kill(self, params):
        # 30 interferers at distance 3: each contributes P/81, total ~0.37P,
        # way over the ~noise-sized budget of an edge-of-range link.
        angles = np.linspace(0, 2 * np.pi, 30, endpoint=False)
        ring = np.column_stack([3 * np.cos(angles), 3 * np.sin(angles)])
        positions = np.vstack([[0, 0], [0.98, 0], ring])
        channel = SINRChannel(positions, params)
        transmissions = [Transmission(0, "x")] + [
            Transmission(i + 2, f"i{i}") for i in range(30)
        ]
        deliveries = channel.resolve(transmissions)
        assert all(d.receiver != 1 for d in deliveries)

    def test_single_weak_interferer_tolerated_close_in(self, params):
        # same geometry but only one ring interferer: budget holds at 0.5 R_T
        positions = np.array([[0, 0], [0.5, 0], [3.0, 0]])
        channel = SINRChannel(positions, params)
        deliveries = channel.resolve([Transmission(0, "x"), Transmission(2, "y")])
        assert any(d.receiver == 1 and d.sender == 0 for d in deliveries)


class TestHalfDuplex:
    def test_transmitter_cannot_receive(self, params):
        channel = channel_for([[0, 0], [0.5, 0]], params)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(1, "b")])
        # both transmit: neither receives
        assert deliveries == []

    def test_full_duplex_option(self, params):
        channel = channel_for([[0, 0], [0.5, 0]], params, half_duplex=False)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(1, "b")])
        # with only each other as interferer at 0.5, SINR is signal/noise-ish
        receivers = sorted(d.receiver for d in deliveries)
        assert receivers == [0, 1]


class TestValidation:
    def test_duplicate_sender_rejected(self, params):
        channel = channel_for([[0, 0], [1, 0]], params)
        with pytest.raises(ConfigurationError):
            channel.resolve([Transmission(0, "a"), Transmission(0, "b")])

    def test_sender_out_of_range_rejected(self, params):
        channel = channel_for([[0, 0]], params)
        with pytest.raises(ConfigurationError):
            channel.resolve([Transmission(5, "a")])

    def test_reach_is_rt(self, params):
        channel = channel_for([[0, 0]], params)
        assert channel.reach == pytest.approx(params.r_t)


class TestInterferenceSplit:
    def test_split_sums_to_total(self, params):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 10, size=(30, 2))
        channel = SINRChannel(positions, params)
        senders = np.arange(1, 20)
        inside, outside = channel.interference_split(0, senders, boundary=3.0)
        diff = positions[senders] - positions[0]
        dist = np.hypot(diff[:, 0], diff[:, 1])
        total = (params.power / dist**params.alpha).sum()
        assert inside + outside == pytest.approx(total)

    def test_receiver_excluded(self, params):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        channel = SINRChannel(positions, params)
        inside, outside = channel.interference_split(
            0, np.array([0, 1]), boundary=2.0
        )
        assert inside == pytest.approx(params.power)
        assert outside == 0.0
