"""Unit tests for the shared resolution engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sinr.channel import SINRChannel, Transmission
from repro.sinr.engine import ResolutionEngine, build_deliveries
from repro.sinr.params import PhysicalParams

PARAMS = PhysicalParams().with_r_t(1.0)


@pytest.fixture()
def positions():
    return np.random.default_rng(3).uniform(0, 6, size=(25, 2))


class TestDistanceMatrix:
    def test_matches_pairwise_euclidean(self, positions):
        engine = ResolutionEngine(positions)
        senders = np.array([0, 4, 9, 17], dtype=np.intp)
        sq = engine.geometry(senders).dist_sq
        diff = positions[:, None, :] - positions[senders][None, :, :]
        expected = np.einsum("ijk,ijk->ij", diff, diff)
        assert sq.shape == (25, 4)
        np.testing.assert_allclose(sq, expected, rtol=1e-9, atol=1e-9)

    def test_never_negative_for_coincident_points(self):
        # the Gram expansion can round a true 0 slightly negative;
        # the engine must clamp it
        base = np.array([[123.456, 789.012]])
        positions = np.vstack([base, base, base + 1.0])
        engine = ResolutionEngine(positions)
        sq = engine.geometry(np.array([0], dtype=np.intp)).dist_sq
        assert sq[1, 0] == 0.0
        assert np.all(sq >= 0.0)

    def test_distances_method(self, positions):
        engine = ResolutionEngine(positions)
        senders = np.array([2, 11], dtype=np.intp)
        dist = engine.distances(senders)
        expected = np.hypot(
            *(positions[:, None, :] - positions[senders][None, :, :]).transpose(2, 0, 1)
        )
        np.testing.assert_allclose(dist, expected, rtol=1e-9, atol=1e-9)

    def test_column_order_follows_sender_order(self, positions):
        engine = ResolutionEngine(positions)
        forward = engine.geometry(np.array([3, 8], dtype=np.intp)).dist_sq
        backward = engine.geometry(np.array([8, 3], dtype=np.intp)).dist_sq
        np.testing.assert_array_equal(forward[:, 0], backward[:, 1])
        np.testing.assert_array_equal(forward[:, 1], backward[:, 0])


class TestDerivedArrays:
    def test_masked_sq_sets_own_columns_infinite(self, positions):
        engine = ResolutionEngine(positions)
        senders = np.array([1, 6], dtype=np.intp)
        geometry = engine.geometry(senders)
        masked = geometry.masked_sq()
        assert masked[1, 0] == np.inf
        assert masked[6, 1] == np.inf
        # everything else untouched
        keep = np.ones((25, 2), dtype=bool)
        keep[1, 0] = keep[6, 1] = False
        np.testing.assert_array_equal(masked[keep], geometry.dist_sq[keep])

    def test_power_matches_direct_path_loss(self, positions):
        engine = ResolutionEngine(positions)
        senders = np.array([0, 5], dtype=np.intp)
        geometry = engine.geometry(senders)
        floor = PARAMS.r_t * 1e-6
        power = geometry.power(PARAMS.power, PARAMS.alpha, floor * floor)
        diff = positions[:, None, :] - positions[senders][None, :, :]
        dist = np.maximum(np.sqrt(np.einsum("ijk,ijk->ij", diff, diff)), floor)
        expected = PARAMS.power / dist**PARAMS.alpha
        expected[senders, np.arange(2)] = 0.0
        np.testing.assert_allclose(power, expected, rtol=1e-9)

    def test_non_integer_half_alpha_falls_back_to_generic_power(self, positions):
        params = PhysicalParams(alpha=3.0).with_r_t(1.0)
        engine = ResolutionEngine(positions)
        senders = np.array([2], dtype=np.intp)
        geometry = engine.geometry(senders)
        floor = params.r_t * 1e-6
        power = geometry.power(params.power, params.alpha, floor * floor)
        diff = positions - positions[2]
        dist = np.maximum(np.hypot(diff[:, 0], diff[:, 1]), floor)
        expected = params.power / dist**3.0
        expected[2] = 0.0
        np.testing.assert_allclose(power[:, 0], expected, rtol=1e-9)

    def test_derive_memoises(self, positions):
        engine = ResolutionEngine(positions)
        geometry = engine.geometry(np.array([0], dtype=np.intp))
        calls = []
        first = geometry.derive("k", lambda: calls.append(1) or "value")
        second = geometry.derive("k", lambda: calls.append(1) or "other")
        assert first == second == "value"
        assert len(calls) == 1


class TestCache:
    def test_disabled_by_default(self, positions):
        engine = ResolutionEngine(positions)
        senders = np.array([0, 1], dtype=np.intp)
        a = engine.geometry(senders)
        b = engine.geometry(senders)
        assert a is not b
        info = engine.cache_info()
        assert info.hits == 0 and info.misses == 2 and info.capacity == 0

    def test_hit_returns_same_geometry(self, positions):
        engine = ResolutionEngine(positions, cache_slots=4)
        senders = np.array([0, 1], dtype=np.intp)
        a = engine.geometry(senders)
        b = engine.geometry(np.array([0, 1], dtype=np.intp))
        assert a is b
        info = engine.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_sender_order_is_a_different_key(self, positions):
        engine = ResolutionEngine(positions, cache_slots=4)
        engine.geometry(np.array([0, 1], dtype=np.intp))
        engine.geometry(np.array([1, 0], dtype=np.intp))
        assert engine.cache_info().misses == 2

    def test_lru_eviction(self, positions):
        engine = ResolutionEngine(positions, cache_slots=2)
        first = np.array([0], dtype=np.intp)
        engine.geometry(first)
        engine.geometry(np.array([1], dtype=np.intp))
        engine.geometry(np.array([2], dtype=np.intp))  # evicts [0]
        engine.geometry(first)
        info = engine.cache_info()
        assert info.misses == 4 and info.hits == 0 and info.size == 2

    def test_lru_refresh_on_hit(self, positions):
        engine = ResolutionEngine(positions, cache_slots=2)
        first = np.array([0], dtype=np.intp)
        engine.geometry(first)
        engine.geometry(np.array([1], dtype=np.intp))
        engine.geometry(first)  # refresh [0]; [1] is now oldest
        engine.geometry(np.array([2], dtype=np.intp))  # evicts [1]
        engine.geometry(first)
        assert engine.cache_info().hits == 2

    def test_clear_cache(self, positions):
        engine = ResolutionEngine(positions, cache_slots=2)
        senders = np.array([0], dtype=np.intp)
        engine.geometry(senders)
        engine.clear_cache()
        assert engine.cache_info().size == 0
        engine.geometry(senders)
        assert engine.cache_info().misses == 2

    def test_hit_rate(self, positions):
        engine = ResolutionEngine(positions, cache_slots=2)
        assert engine.cache_info().hit_rate == 0.0
        senders = np.array([0], dtype=np.intp)
        engine.geometry(senders)
        engine.geometry(senders)
        assert engine.cache_info().hit_rate == pytest.approx(0.5)

    def test_negative_capacity_rejected(self, positions):
        with pytest.raises(ConfigurationError):
            ResolutionEngine(positions, cache_slots=-1)


class TestChannelIntegration:
    def test_cached_channel_reuses_reception_mask(self, positions):
        channel = SINRChannel(positions, PARAMS, cache_slots=3)
        transmissions = [Transmission(s, f"m{s}") for s in (0, 7, 13)]
        first = channel.resolve(transmissions)
        second = channel.resolve(transmissions)
        assert first == second
        info = channel.engine.cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_payloads_are_fresh_on_cached_slots(self, positions):
        # the geometry is cached, the payloads must not be
        channel = SINRChannel(positions, PARAMS, cache_slots=3)
        first = channel.resolve([Transmission(0, "round-1")])
        second = channel.resolve([Transmission(0, "round-2")])
        assert {d.payload for d in first} <= {"round-1"}
        assert {d.payload for d in second} <= {"round-2"}
        assert len(first) == len(second)

    def test_signal_matrix_returns_private_copy(self, positions):
        channel = SINRChannel(positions, PARAMS, cache_slots=3)
        senders = np.array([0, 7], dtype=np.intp)
        matrix = channel.signal_matrix(senders)
        matrix[:] = -1.0
        again = channel.signal_matrix(senders)
        assert np.all(again >= 0.0)


class TestBuildDeliveries:
    def test_builds_python_typed_deliveries(self):
        senders = np.array([5, 9], dtype=np.intp)
        transmissions = [Transmission(5, "a"), Transmission(9, "b")]
        receivers = np.array([2, 3], dtype=np.intp)
        columns = np.array([1, 0], dtype=np.intp)
        deliveries = build_deliveries(receivers, columns, senders, transmissions)
        assert [(d.receiver, d.sender, d.payload) for d in deliveries] == [
            (2, 9, "b"),
            (3, 5, "a"),
        ]
        assert all(
            type(d.receiver) is int and type(d.sender) is int for d in deliveries
        )
