"""Unit tests for the protocol-model channel."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sinr.channel import ProtocolChannel, Transmission


class TestProtocolChannel:
    def test_single_sender_in_range_delivers(self):
        channel = ProtocolChannel(np.array([[0.0, 0], [0.8, 0]]), radius=1.0)
        deliveries = channel.resolve([Transmission(0, "x")])
        assert [(d.receiver, d.sender) for d in deliveries] == [(1, 0)]

    def test_guard_zone_interferer_blocks(self):
        # sender at 0.8, interferer at 1.3 < (1 + 0.5) * 1.0: blocked —
        # this is the case the plain graph model would deliver
        positions = np.array([[0.0, 0], [0.8, 0], [2.1, 0]])
        channel = ProtocolChannel(positions, radius=1.0, guard=0.5)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(2, "b")])
        assert all(d.receiver != 1 for d in deliveries)

    def test_outside_guard_zone_ok(self):
        positions = np.array([[0.0, 0], [0.8, 0], [2.5, 0]])
        channel = ProtocolChannel(positions, radius=1.0, guard=0.5)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(2, "b")])
        assert any(d.receiver == 1 and d.sender == 0 for d in deliveries)

    def test_zero_guard_matches_distance_radius(self):
        # guard=0: only senders within the radius itself interfere
        positions = np.array([[0.0, 0], [0.8, 0], [1.85, 0]])
        channel = ProtocolChannel(positions, radius=1.0, guard=0.0)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(2, "b")])
        assert any(d.receiver == 1 and d.sender == 0 for d in deliveries)

    def test_half_duplex(self):
        channel = ProtocolChannel(np.array([[0.0, 0], [0.5, 0]]), radius=1.0)
        assert (
            channel.resolve([Transmission(0, "a"), Transmission(1, "b")]) == []
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolChannel(np.zeros((1, 2)), radius=0.0)
        with pytest.raises(ConfigurationError):
            ProtocolChannel(np.zeros((1, 2)), radius=1.0, guard=-0.1)

    def test_reach_and_guard_accessors(self):
        channel = ProtocolChannel(np.zeros((1, 2)), radius=2.0, guard=0.3)
        assert channel.reach == 2.0
        assert channel.guard == 0.3

    def test_harsher_than_graph_model(self):
        # any delivery under the protocol model is also a delivery under
        # the graph model (the guard zone only adds interferers)
        from repro.sinr.channel import GraphChannel

        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 6, size=(25, 2))
        proto = ProtocolChannel(positions, radius=1.0, guard=0.5)
        graph = GraphChannel(positions, radius=1.0)
        for trial in range(10):
            senders = rng.choice(25, size=5, replace=False)
            txs = [Transmission(int(s), "x") for s in senders]
            proto_set = {(d.receiver, d.sender) for d in proto.resolve(txs)}
            graph_set = {(d.receiver, d.sender) for d in graph.resolve(txs)}
            assert proto_set <= graph_set
