"""Unit tests for the graph-based and collision-free channels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sinr.channel import CollisionFreeChannel, GraphChannel, Transmission


class TestGraphChannel:
    def test_single_neighbor_heard(self):
        channel = GraphChannel(np.array([[0.0, 0], [0.5, 0]]), radius=1.0)
        deliveries = channel.resolve([Transmission(0, "x")])
        assert [(d.receiver, d.sender) for d in deliveries] == [(1, 0)]

    def test_two_transmitting_neighbors_collide(self):
        positions = np.array([[0.0, 0], [1.0, 0], [2.0, 0]])
        channel = GraphChannel(positions, radius=1.0)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(2, "b")])
        assert all(d.receiver != 1 for d in deliveries)

    def test_non_neighbor_does_not_interfere(self):
        # the defining difference from SINR: a transmitter just beyond the
        # radius is *completely* harmless in the graph model
        positions = np.array([[0.0, 0], [1.0, 0], [2.01, 0], [3.0, 0]])
        channel = GraphChannel(positions, radius=1.0)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(2, "b")])
        receivers = {(d.receiver, d.sender) for d in deliveries}
        assert (1, 0) in receivers  # node 2 is out of node 1's radius

    def test_half_duplex(self):
        positions = np.array([[0.0, 0], [0.5, 0]])
        channel = GraphChannel(positions, radius=1.0)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(1, "b")])
        assert deliveries == []

    def test_out_of_range_silent(self):
        channel = GraphChannel(np.array([[0.0, 0], [5.0, 0]]), radius=1.0)
        assert channel.resolve([Transmission(0, "x")]) == []

    def test_radius_validation(self):
        with pytest.raises(ConfigurationError):
            GraphChannel(np.zeros((1, 2)), radius=-1.0)

    def test_empty(self):
        channel = GraphChannel(np.zeros((1, 2)), radius=1.0)
        assert channel.resolve([]) == []


class TestCollisionFreeChannel:
    def test_everyone_in_range_hears(self):
        positions = np.array([[0.0, 0], [0.5, 0], [0.9, 0]])
        channel = CollisionFreeChannel(positions, radius=1.0)
        deliveries = channel.resolve([Transmission(0, "x")])
        assert sorted(d.receiver for d in deliveries) == [1, 2]

    def test_nearest_sender_wins(self):
        positions = np.array([[0.0, 0], [1.0, 0], [1.6, 0]])
        channel = CollisionFreeChannel(positions, radius=1.0)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(2, "b")])
        by_receiver = {d.receiver: d.sender for d in deliveries}
        assert by_receiver[1] == 2  # distance 0.6 beats distance 1.0

    def test_half_duplex(self):
        positions = np.array([[0.0, 0], [0.5, 0]])
        channel = CollisionFreeChannel(positions, radius=1.0)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(1, "b")])
        assert deliveries == []

    def test_full_duplex_cross_delivery(self):
        positions = np.array([[0.0, 0], [0.5, 0]])
        channel = CollisionFreeChannel(positions, radius=1.0, half_duplex=False)
        deliveries = channel.resolve([Transmission(0, "a"), Transmission(1, "b")])
        assert sorted((d.receiver, d.payload) for d in deliveries) == [
            (0, "b"),
            (1, "a"),
        ]
