"""Unit tests for interference measurement (Lemma 3 instrumentation)."""

import numpy as np
import pytest

from repro.sinr.interference import InterferenceMeter, received_power, total_interference
from repro.sinr.params import PhysicalParams


@pytest.fixture()
def params():
    return PhysicalParams().with_r_t(1.0)


class TestReceivedPower:
    def test_vectorised_law(self, params):
        dist = np.array([1.0, 2.0])
        power = received_power(params, dist)
        assert power[0] == pytest.approx(params.power)
        assert power[1] == pytest.approx(params.power / 2**params.alpha)

    def test_rejects_zero_distance(self, params):
        with pytest.raises(ValueError):
            received_power(params, np.array([0.0]))


class TestTotalInterference:
    def test_sums_all_senders(self, params):
        positions = np.array([[0.0, 0], [1.0, 0], [2.0, 0]])
        total = total_interference(params, positions, 0, np.array([1, 2]))
        expected = params.power * (1.0 + 1.0 / 2**params.alpha)
        assert total == pytest.approx(expected)

    def test_excludes_receiver(self, params):
        positions = np.array([[0.0, 0], [1.0, 0]])
        total = total_interference(params, positions, 0, np.array([0, 1]))
        assert total == pytest.approx(params.power)

    def test_empty_senders(self, params):
        positions = np.array([[0.0, 0]])
        assert total_interference(params, positions, 0, np.array([])) == 0.0


class TestInterferenceMeter:
    def test_split_respects_boundary(self, params):
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        meter = InterferenceMeter(
            params=params, positions=positions, receivers=np.array([0]), boundary=2.0
        )
        meter.observe(np.array([1, 2]))
        assert meter.slots_observed == 1
        assert meter.mean_inside() == pytest.approx(params.power)
        assert meter.mean_outside() == pytest.approx(
            params.power / 5**params.alpha
        )

    def test_default_boundary_is_ri(self, params):
        meter = InterferenceMeter(
            params=params, positions=np.zeros((1, 2)), receivers=np.array([0])
        )
        assert meter.boundary == pytest.approx(params.r_i)

    def test_silent_slot_counts_zero(self, params):
        meter = InterferenceMeter(
            params=params,
            positions=np.array([[0.0, 0.0], [1.0, 0.0]]),
            receivers=np.array([0]),
            boundary=2.0,
        )
        meter.observe(np.array([]))
        assert meter.mean_outside() == 0.0
        assert meter.slots_observed == 1

    def test_bound_matches_params(self, params):
        meter = InterferenceMeter(
            params=params, positions=np.zeros((1, 2)), receivers=np.array([0])
        )
        assert meter.bound() == pytest.approx(params.outside_interference_bound)

    def test_max_tracks_worst_sample(self, params):
        positions = np.array([[0.0, 0.0], [3.0, 0.0], [6.0, 0.0]])
        meter = InterferenceMeter(
            params=params, positions=positions, receivers=np.array([0]), boundary=1.0
        )
        meter.observe(np.array([1]))
        meter.observe(np.array([1, 2]))
        assert meter.max_outside() > meter.mean_outside() > 0.0
