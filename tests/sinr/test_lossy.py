"""Unit tests for the lossy channel wrapper (failure injection)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sinr.channel import CollisionFreeChannel, Transmission
from repro.sinr.lossy import LossyChannel


def make_pair():
    positions = np.array([[0.0, 0.0], [0.5, 0.0]])
    return CollisionFreeChannel(positions, radius=1.0)


class TestLossyChannel:
    def test_zero_drop_is_transparent(self):
        channel = LossyChannel(make_pair(), drop=0.0)
        deliveries = channel.resolve([Transmission(0, "x")])
        assert len(deliveries) == 1
        assert channel.dropped == 0
        assert channel.passed == 1

    def test_full_drop_kills_everything(self):
        channel = LossyChannel(make_pair(), drop=1.0)
        assert channel.resolve([Transmission(0, "x")]) == []
        assert channel.dropped == 1

    def test_drop_rate_statistical(self):
        channel = LossyChannel(make_pair(), drop=0.3, seed=5)
        for _ in range(2000):
            channel.resolve([Transmission(0, "x")])
        rate = channel.dropped / (channel.dropped + channel.passed)
        assert abs(rate - 0.3) < 0.05

    def test_deterministic_per_seed(self):
        a = LossyChannel(make_pair(), drop=0.5, seed=9)
        b = LossyChannel(make_pair(), drop=0.5, seed=9)
        for _ in range(100):
            ra = a.resolve([Transmission(0, "x")])
            rb = b.resolve([Transmission(0, "x")])
            assert len(ra) == len(rb)

    def test_reach_and_positions_forwarded(self):
        inner = make_pair()
        channel = LossyChannel(inner, drop=0.2)
        assert channel.reach == inner.reach
        assert channel.n == inner.n
        assert channel.inner is inner

    def test_invalid_drop_rejected(self):
        with pytest.raises(ConfigurationError):
            LossyChannel(make_pair(), drop=1.5)


class TestMWUnderLoss:
    def test_protocol_survives_heavy_loss(self, params):
        # the MW algorithm is retransmission-based: 25% extra random loss
        # must not break termination, properness or independence
        from repro import SINRChannel, uniform_deployment
        from repro.coloring.runner import run_mw_coloring_audited

        dep = uniform_deployment(50, 5.0, seed=2)
        lossy = LossyChannel(SINRChannel(dep.positions, params), drop=0.25, seed=1)
        result, auditor = run_mw_coloring_audited(
            dep, params, seed=4, channel=lossy
        )
        assert result.stats.completed
        assert result.is_proper()
        assert auditor.clean
        assert lossy.dropped > 0  # the loss actually happened
