"""Unit tests for physical parameters and derived ranges."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sinr.params import PhysicalParams


class TestValidation:
    def test_defaults_valid(self):
        PhysicalParams()

    def test_alpha_must_exceed_two(self):
        with pytest.raises(ConfigurationError):
            PhysicalParams(alpha=2.0)

    def test_beta_at_least_one(self):
        with pytest.raises(ConfigurationError):
            PhysicalParams(beta=0.5)

    def test_rho_above_one(self):
        with pytest.raises(ConfigurationError):
            PhysicalParams(rho=1.0)

    def test_positive_noise(self):
        with pytest.raises(ConfigurationError):
            PhysicalParams(noise=0.0)


class TestRanges:
    def test_rt_below_rmax(self):
        params = PhysicalParams()
        assert params.r_t < params.r_max

    def test_rt_formula(self):
        params = PhysicalParams(power=16.0, noise=1.0, alpha=4.0, beta=2.0)
        assert params.r_t == pytest.approx((16.0 / 4.0) ** 0.25)

    def test_rmax_formula(self):
        params = PhysicalParams(power=16.0, noise=1.0, alpha=4.0, beta=2.0)
        assert params.r_max == pytest.approx((16.0 / 2.0) ** 0.25)

    def test_ri_at_least_twice_rt(self):
        for alpha in (2.5, 3.0, 4.0, 6.0):
            for beta in (1.0, 2.0, 4.0):
                params = PhysicalParams(alpha=alpha, beta=beta)
                assert params.r_i >= 2.0 * params.r_t

    def test_ri_formula(self):
        params = PhysicalParams(alpha=4.0, beta=2.0, rho=2.0)
        base = 96.0 * 2.0 * 2.0 * 3.0 / 2.0
        assert params.r_i == pytest.approx(2.0 * params.r_t * math.sqrt(base))

    def test_mac_distance_formula(self):
        params = PhysicalParams(alpha=4.0, beta=2.0)
        assert params.mac_distance == pytest.approx((32.0 * 1.5 * 2.0) ** 0.25)

    def test_mac_distance_decreases_with_alpha(self):
        distances = [
            PhysicalParams(alpha=a).mac_distance for a in (2.5, 3.0, 4.0, 6.0)
        ]
        assert distances == sorted(distances, reverse=True)


class TestReception:
    def test_received_power_law(self):
        params = PhysicalParams(power=8.0, alpha=3.0)
        assert params.received_power(2.0) == pytest.approx(1.0)

    def test_received_power_rejects_zero_distance(self):
        with pytest.raises(ConfigurationError):
            PhysicalParams().received_power(0.0)

    def test_decodes_at_rt_with_no_interference(self):
        params = PhysicalParams().with_r_t(1.0)
        signal = params.received_power(params.r_t)
        # by construction signal / noise = 2 * beta at exactly R_T
        assert params.sinr(signal, 0.0) == pytest.approx(2.0 * params.beta)
        assert params.decodes(signal, 0.0)

    def test_does_not_decode_beyond_rmax(self):
        params = PhysicalParams().with_r_t(1.0)
        signal = params.received_power(params.r_max * 1.01)
        assert not params.decodes(signal, 0.0)

    def test_interference_budget_at_rt(self):
        # at exactly R_T the tolerable interference equals the noise
        params = PhysicalParams().with_r_t(1.0)
        signal = params.received_power(1.0)
        assert params.decodes(signal, params.noise)
        assert not params.decodes(signal, params.noise * 1.05)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicalParams().sinr(-1.0, 0.0)


class TestTransforms:
    def test_with_r_t_round_trips(self):
        params = PhysicalParams().with_r_t(2.5)
        assert params.r_t == pytest.approx(2.5)

    def test_boosted_scales_range_linearly(self):
        params = PhysicalParams().with_r_t(1.0)
        boosted = params.boosted(3.0)
        assert boosted.r_t == pytest.approx(3.0)
        assert boosted.power == pytest.approx(params.power * 3.0**params.alpha)

    def test_boost_preserves_other_fields(self):
        params = PhysicalParams(alpha=3.5, beta=1.5, rho=1.7)
        boosted = params.boosted(2.0)
        assert boosted.alpha == 3.5
        assert boosted.beta == 1.5
        assert boosted.rho == 1.7

    def test_outside_interference_bound_formula(self):
        params = PhysicalParams().with_r_t(1.0)
        expected = params.power / (2 * params.rho * params.beta)
        assert params.outside_interference_bound == pytest.approx(expected)

    def test_describe_mentions_ranges(self):
        text = PhysicalParams().describe()
        assert "R_T" in text and "R_I" in text
