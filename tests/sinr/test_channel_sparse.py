"""Differential tests: the sparse resolver against the dense engine.

The sparse engine's contract (``docs/SCALING.md``) has two halves, and
this suite pins both on the seeded scenario corpus of
``test_channel_reference``:

* **Containment.**  The certified far-field term only ever *over*-states
  interference, so with the term enabled the sparse delivery set must be
  a subset of the dense one — on every scenario, at any truncation
  radius >= R_T.  At the default parameters R_I = 48 R_T, so every pair
  in a <= 8-extent scenario is near and the subset is trivially equality;
  to make the conservatism actually bite, the subset corpus truncates
  ``interference_range`` to 2 R_T and asserts that at least some
  scenarios produce a *strict* subset (otherwise the test would pass
  vacuously on a resolver that ignores the far field entirely).

* **Parity.**  With the far-field term disabled, near-field terms are
  computed by the same kernel on the same clamped squared distances, so
  when every sender pair is near the delivery sets must be *equal* —
  including tie-breaking on coincident nodes.

Plus the grid-bucketing edge cases the cell structure must survive:
nodes exactly on cell boundaries, coincident nodes, everything in one
cell, empty and singleton sender sets — and a hypothesis property that
containment holds on arbitrary random deployments.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sinr.channel import SINRChannel, Transmission
from repro.sinr.params import PhysicalParams
from repro.sinr.sparse import SparseResolutionEngine

from .test_channel_reference import PARAMS, SCENARIO_SEEDS, as_set, random_scenario

#: Truncation radius for the subset corpus: well inside the 1.5–8 extent
#: range, so out-of-disc senders actually exist and the certified term
#: genuinely engages (at the full R_I = 48 R_T every pair would be near).
TRUNCATED_RANGE = 2.0


def dense_and_sparse(positions, half_duplex, **sparse_kwargs):
    dense = SINRChannel(positions, PARAMS, half_duplex=half_duplex)
    sparse = SINRChannel(
        positions, PARAMS, half_duplex=half_duplex, resolver="sparse", **sparse_kwargs
    )
    return dense, sparse


# -- containment: sparse ⊆ dense ----------------------------------------------


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_sparse_deliveries_subset_of_dense(seed):
    positions, transmissions, half_duplex = random_scenario(seed)
    dense, sparse = dense_and_sparse(
        positions, half_duplex, interference_range=TRUNCATED_RANGE
    )
    sparse_set = as_set(sparse.resolve(transmissions))
    dense_set = as_set(dense.resolve(transmissions))
    assert sparse_set <= dense_set


def test_truncated_corpus_produces_strict_subsets():
    """The subset assertion above must not be passing vacuously: across
    the corpus the certified term has to suppress at least one delivery
    the dense engine grants (conservatism actually engaged)."""
    strict = 0
    for seed in SCENARIO_SEEDS:
        positions, transmissions, half_duplex = random_scenario(seed)
        dense, sparse = dense_and_sparse(
            positions, half_duplex, interference_range=TRUNCATED_RANGE
        )
        if as_set(sparse.resolve(transmissions)) < as_set(dense.resolve(transmissions)):
            strict += 1
    assert strict > 0


# -- parity: far-field term disabled or unreachable ---------------------------


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_sparse_exact_parity_with_far_field_disabled(seed):
    """With the far term off and every pair near (extent <= 8 << R_I), the
    sparse path runs the dense decision on the same clamped distances."""
    positions, transmissions, half_duplex = random_scenario(seed)
    dense, sparse = dense_and_sparse(positions, half_duplex, far_field=False)
    assert as_set(sparse.resolve(transmissions)) == as_set(
        dense.resolve(transmissions)
    )


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_sparse_exact_parity_at_default_range(seed):
    """At the default R_I = 48 R_T no scenario sender is ever far, so the
    certified term is exactly zero and even the enabled-far-field sparse
    path must agree with dense verbatim."""
    positions, transmissions, half_duplex = random_scenario(seed)
    dense, sparse = dense_and_sparse(positions, half_duplex)
    assert as_set(sparse.resolve(transmissions)) == as_set(
        dense.resolve(transmissions)
    )


# -- grid bucketing edge cases -------------------------------------------------


class TestGridBucketing:
    def test_nodes_exactly_on_cell_boundaries(self):
        """Nodes sitting exactly on cell-boundary multiples of the cell
        side must land in exactly one bucket each and resolve like dense."""
        engine = SparseResolutionEngine(np.zeros((1, 2)), PARAMS)
        cell = engine.cell_size
        positions = np.array(
            [
                [0.0, 0.0],
                [cell, 0.0],
                [0.0, cell],
                [cell, cell],
                [2 * cell, 2 * cell],
                [0.5 * cell, 0.5 * cell],
            ]
        )
        boundary = SparseResolutionEngine(positions, PARAMS)
        bucketed = np.sort(
            np.concatenate([bucket for bucket in boundary._cells.values()])
        )
        assert bucketed.tolist() == list(range(len(positions)))
        transmissions = [Transmission(0, "a"), Transmission(4, "b")]
        dense, sparse = dense_and_sparse(positions, True)
        assert as_set(sparse.resolve(transmissions)) == as_set(
            dense.resolve(transmissions)
        )

    def test_coincident_nodes(self):
        """Coincident sender pairs jam each other identically under both
        resolvers (near-field floor + tie-breaking)."""
        positions = np.array(
            [[1.0, 1.0], [1.0, 1.0], [1.5, 1.0], [4.0, 4.0], [4.0, 4.0]]
        )
        transmissions = [Transmission(0, "a"), Transmission(1, "b"), Transmission(3, "c")]
        for half_duplex in (True, False):
            dense, sparse = dense_and_sparse(positions, half_duplex)
            assert as_set(sparse.resolve(transmissions)) == as_set(
                dense.resolve(transmissions)
            )

    def test_all_nodes_in_one_cell(self):
        """A deployment much smaller than one cell: a single bucket, a
        single candidate block, dense-equal results."""
        rng = np.random.default_rng(7)
        engine = SparseResolutionEngine(np.zeros((1, 2)), PARAMS)
        positions = rng.uniform(0.0, 0.2 * engine.cell_size, size=(12, 2))
        sparse_engine = SparseResolutionEngine(positions, PARAMS)
        assert len(sparse_engine._cells) == 1
        transmissions = [Transmission(i, i) for i in (0, 3, 5)]
        dense, sparse = dense_and_sparse(positions, True)
        assert as_set(sparse.resolve(transmissions)) == as_set(
            dense.resolve(transmissions)
        )

    def test_empty_sender_set(self):
        positions = np.random.default_rng(0).uniform(0, 3, size=(10, 2))
        sparse = SINRChannel(positions, PARAMS, resolver="sparse")
        assert sparse.resolve([]) == []
        receiving, best = sparse.sparse_engine.reception(
            np.empty(0, dtype=np.intp)
        )
        assert not receiving.any()
        assert (best == 0).all()

    def test_single_node_transmitting_alone(self):
        sparse = SINRChannel(np.array([[0.0, 0.0]]), PARAMS, resolver="sparse")
        assert sparse.resolve([Transmission(0, "x")]) == []

    def test_all_nodes_transmitting_half_duplex(self):
        positions = np.random.default_rng(1).uniform(0, 2, size=(6, 2))
        transmissions = [Transmission(i, i) for i in range(6)]
        sparse = SINRChannel(positions, PARAMS, resolver="sparse")
        assert sparse.resolve(transmissions) == []


# -- configuration surface -----------------------------------------------------


class TestResolverConfiguration:
    def test_dense_rejects_sparse_only_knobs(self):
        positions = np.zeros((2, 2))
        with pytest.raises(ConfigurationError):
            SINRChannel(positions, PARAMS, far_field=False)
        with pytest.raises(ConfigurationError):
            SINRChannel(positions, PARAMS, interference_range=2.0)

    def test_unknown_resolver_rejected(self):
        with pytest.raises(ConfigurationError):
            SINRChannel(np.zeros((2, 2)), PARAMS, resolver="banded")

    def test_interference_range_below_r_t_rejected(self):
        """A truncation radius below R_T could cut off a decodable sender,
        voiding the subset guarantee — must be refused loudly."""
        with pytest.raises(ConfigurationError):
            SINRChannel(
                np.zeros((2, 2)),
                PARAMS,
                resolver="sparse",
                interference_range=0.5 * PARAMS.r_t,
            )

    def test_resolver_property_reports_backend(self):
        positions = np.zeros((3, 2))
        assert SINRChannel(positions, PARAMS).resolver == "dense"
        sparse = SINRChannel(positions, PARAMS, resolver="sparse")
        assert sparse.resolver == "sparse"
        assert sparse.sparse_engine is not None
        assert math.isclose(
            sparse.sparse_engine.cell_size, PARAMS.r_i / math.sqrt(2.0)
        )

    def test_sparse_work_counter_advances(self):
        positions = np.random.default_rng(3).uniform(0, 4, size=(20, 2))
        sparse = SINRChannel(
            positions, PARAMS, resolver="sparse", interference_range=TRUNCATED_RANGE
        )
        sparse.resolve([Transmission(0, "x"), Transmission(5, "y")])
        engine = sparse.sparse_engine
        assert engine.pair_evals > 0
        assert engine.near_pairs <= engine.pair_evals


# -- hypothesis property: containment on arbitrary deployments -----------------


@st.composite
def sparse_scenario(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=12.0),
                st.floats(min_value=0.0, max_value=12.0),
            ),
            min_size=n,
            max_size=n,
        )
    )
    k = draw(st.integers(min_value=0, max_value=n))
    senders = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    half_duplex = draw(st.booleans())
    return np.asarray(coords, dtype=float), senders, half_duplex


@given(sparse_scenario())
@settings(max_examples=50, deadline=None)
def test_sparse_subset_property(scenario):
    positions, senders, half_duplex = scenario
    transmissions = [Transmission(s, ("p", s)) for s in senders]
    dense, sparse = dense_and_sparse(
        positions, half_duplex, interference_range=TRUNCATED_RANGE
    )
    assert as_set(sparse.resolve(transmissions)) <= as_set(
        dense.resolve(transmissions)
    )
