"""Docs hygiene: local references in the markdown docs must resolve."""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_local_doc_references_resolve():
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0, completed.stderr


def test_expected_docs_exist():
    for name in (
        "README.md",
        "docs/API.md",
        "docs/OBSERVABILITY.md",
        "docs/PERFORMANCE.md",
        "docs/ALGORITHM.md",
        "docs/MODEL.md",
    ):
        assert (REPO_ROOT / name).exists(), f"missing {name}"
