"""Smoke tests: every example script runs cleanly as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "OK" in completed.stdout or "map" in completed.stdout


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "tdma_mac_schedule",
        "simulate_message_passing",
        "sensor_network_init",
        "inspect_links",
    } <= names
