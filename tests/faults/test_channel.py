"""FaultyChannel: each fault model's semantics, clocking, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultPlan,
    FaultyChannel,
    Jammer,
    MessageFaults,
    NodeOutage,
    SlotSkew,
)
from repro.sinr.channel import CollisionFreeChannel, SINRChannel, Transmission
from repro.sinr.lossy import LossyChannel
from repro.sinr.params import PhysicalParams
from repro.telemetry import MetricsRegistry

LINE = np.array([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0], [1.5, 0.0]])


def oracle(positions=LINE, radius=1.0) -> CollisionFreeChannel:
    return CollisionFreeChannel(positions, radius)


class TestEmptyPlanPassthrough:
    def test_identical_deliveries_and_zero_rng_draws(self):
        bare = oracle()
        wrapped = FaultyChannel(oracle(), FaultPlan(), seed=3)
        state_before = wrapped._rng.bit_generator.state
        for slot in range(8):
            batch = [Transmission(sender=slot % 2, payload=slot)]
            assert wrapped.resolve(batch) == bare.resolve(batch)
        assert wrapped._rng.bit_generator.state == state_before
        assert wrapped.events.injected == 0

    def test_plan_type_and_node_bounds_validated(self):
        with pytest.raises(ConfigurationError, match="FaultPlan"):
            FaultyChannel(oracle(), {"outages": []})
        plan = FaultPlan(outages=[NodeOutage(node=99)])
        with pytest.raises(ConfigurationError, match="node 99"):
            FaultyChannel(oracle(), plan)


class TestOutages:
    def test_down_sender_transmission_suppressed(self):
        plan = FaultPlan(outages=[NodeOutage(node=0)])
        channel = FaultyChannel(oracle(), plan)
        channel.begin_slot(0)
        assert channel.resolve([Transmission(sender=0, payload="x")]) == []
        assert channel.events.suppressed_transmissions == 1

    def test_down_sender_contributes_no_interference(self):
        params = PhysicalParams().with_r_t(1.0)
        positions = np.array([[0.0, 0.0], [0.6, 0.0], [0.3, 0.0]])
        batch = [Transmission(0, "a"), Transmission(1, "b")]
        reference = SINRChannel(positions, params).resolve([Transmission(0, "a")])
        plan = FaultPlan(outages=[NodeOutage(node=1)])
        channel = FaultyChannel(SINRChannel(positions, params), plan)
        channel.begin_slot(0)
        faulted = channel.resolve(batch)
        # node 2 hears node 0 as if node 1 never transmitted; node 1's
        # own radio is down, so its reception disappears too
        assert faulted == [d for d in reference if d.receiver != 1]
        assert any(d.receiver == 2 for d in faulted)
        # the scenario is meaningful: with node 1 up, node 2 hears nothing
        assert not any(
            d.receiver == 2
            for d in SINRChannel(positions, params).resolve(batch)
        )

    def test_down_receiver_hears_nothing(self):
        plan = FaultPlan(outages=[NodeOutage(node=1, start=0, stop=2)])
        channel = FaultyChannel(oracle(), plan)
        channel.begin_slot(0)
        lost = channel.resolve([Transmission(sender=0, payload="x")])
        assert all(d.receiver != 1 for d in lost)
        assert channel.events.down_receiver_losses == 1
        channel.begin_slot(2)  # restart: the radio is back
        back = channel.resolve([Transmission(sender=0, payload="x")])
        assert any(d.receiver == 1 for d in back)

    def test_node_down_predicate(self):
        plan = FaultPlan(outages=[NodeOutage(node=2, start=5, stop=6)])
        channel = FaultyChannel(oracle(), plan)
        assert channel.node_down(2, 5)
        assert not channel.node_down(2, 6)
        assert not channel.node_down(0, 5)


class TestSlotSkew:
    def test_skewed_sender_still_interferes(self):
        params = PhysicalParams().with_r_t(1.0)
        positions = np.array([[0.0, 0.0], [0.6, 0.0], [0.3, 0.0]])
        batch = [Transmission(0, "a"), Transmission(1, "b")]
        reference = SINRChannel(positions, params).resolve(batch)
        plan = FaultPlan(skews=[SlotSkew(node=1, period=1)])  # every slot
        channel = FaultyChannel(SINRChannel(positions, params), plan)
        channel.begin_slot(0)
        faulted = channel.resolve(batch)
        # Same interference picture, minus anything node 1 delivered —
        # unlike an outage, which would have handed node 2 a clean slot.
        assert faulted == [d for d in reference if d.sender != 1]
        assert channel.events.desynced_deliveries == sum(
            1 for d in reference if d.sender == 1
        )

    def test_skew_phase_only_bites_periodically(self):
        plan = FaultPlan(skews=[SlotSkew(node=0, period=3, phase=1)])
        channel = FaultyChannel(oracle(), plan)
        heard = []
        for slot in range(6):
            channel.begin_slot(slot)
            out = channel.resolve([Transmission(sender=0, payload=slot)])
            heard.append(bool(out))
        assert heard == [True, False, True, True, False, True]


class TestJammers:
    def test_jammer_kills_by_received_power(self):
        plan = FaultPlan(
            jammers=[Jammer(x=2.0, y=0.0, power=5.0)], jam_threshold=0.5
        )
        channel = FaultyChannel(oracle(), plan)
        channel.begin_slot(0)
        deliveries = channel.resolve([Transmission(sender=1, payload="x")])
        receivers = {d.receiver for d in deliveries}
        # node 0 (dist 2 from jammer, received 0.31) survives;
        # nodes 2 and 3 (dist 1 and 0.5 -> 5 and 80) are jammed.
        assert receivers == {0}
        assert channel.events.jammed == 2

    def test_pulsed_jammer_windows(self):
        plan = FaultPlan(
            jammers=[Jammer(x=1.5, y=0.0, power=50.0, period=2, duty=1)],
            jam_threshold=0.5,
        )
        channel = FaultyChannel(oracle(), plan)
        counts = []
        for slot in range(4):
            channel.begin_slot(slot)
            counts.append(
                len(channel.resolve([Transmission(sender=0, payload="x")]))
            )
        assert counts[0] < counts[1] and counts[2] < counts[3]

    def test_threshold_derived_from_inner_params(self):
        params = PhysicalParams().with_r_t(1.0)
        plan = FaultPlan(jammers=[Jammer(x=0.0, y=0.0, power=1.0)])
        channel = FaultyChannel(SINRChannel(LINE, params), plan)
        assert channel._jam_threshold == pytest.approx(
            float(params.beta) * float(params.noise)
        )

    def test_threshold_required_without_params(self):
        plan = FaultPlan(jammers=[Jammer(x=0.0, y=0.0, power=1.0)])
        with pytest.raises(ConfigurationError, match="jam_threshold"):
            FaultyChannel(oracle(), plan)


class TestMessageFaults:
    def test_drop_matches_legacy_lossy_channel(self):
        lossy = LossyChannel(oracle(), drop=0.4, seed=7)
        plan = FaultPlan(messages=MessageFaults(drop=0.4))
        faulty = FaultyChannel(oracle(), plan, seed=7)
        for slot in range(40):
            batch = [Transmission(sender=slot % 4, payload=slot)]
            assert lossy.resolve(batch) == faulty.resolve(batch)
        assert lossy.dropped == faulty.events.dropped

    def test_corruption_counts_separately_from_drops(self):
        plan = FaultPlan(messages=MessageFaults(corrupt=1.0))
        channel = FaultyChannel(oracle(), plan, seed=0)
        channel.begin_slot(0)
        assert channel.resolve([Transmission(sender=0, payload="x")]) == []
        assert channel.events.corrupted > 0
        assert channel.events.dropped == 0

    def test_plan_seed_overrides_wrapper_seed(self):
        plan = FaultPlan(messages=MessageFaults(drop=0.5), seed=42)
        a = FaultyChannel(oracle(), plan, seed=1)
        b = FaultyChannel(oracle(), plan, seed=2)
        for slot in range(30):
            batch = [Transmission(sender=slot % 4, payload=slot)]
            assert a.resolve(batch) == b.resolve(batch)


class TestClocking:
    def test_standalone_wrapper_self_clocks(self):
        plan = FaultPlan(outages=[NodeOutage(node=0, start=2, stop=3)])
        channel = FaultyChannel(oracle(), plan)
        outcomes = [
            bool(channel.resolve([Transmission(sender=0, payload=s)]))
            for s in range(4)
        ]
        assert outcomes == [True, True, False, True]

    def test_external_clock_pins_the_slot(self):
        plan = FaultPlan(outages=[NodeOutage(node=0, start=2, stop=3)])
        channel = FaultyChannel(oracle(), plan)
        channel.begin_slot(2)
        # repeated resolves stay in slot 2 once externally clocked
        for _ in range(3):
            assert channel.resolve([Transmission(sender=0, payload="x")]) == []
        channel.begin_slot(3)
        assert channel.resolve([Transmission(sender=0, payload="x")])

    def test_begin_slot_forwards_to_stacked_wrapper(self):
        inner = FaultyChannel(
            oracle(), FaultPlan(outages=[NodeOutage(node=0, start=1)])
        )
        outer = FaultyChannel(inner, FaultPlan())
        outer.begin_slot(1)
        assert inner.slot == 1


class TestEventsAndTelemetry:
    def test_events_as_dict_and_injected(self):
        plan = FaultPlan(outages=[NodeOutage(node=0)])
        channel = FaultyChannel(oracle(), plan)
        channel.begin_slot(0)
        channel.resolve([Transmission(sender=0, payload="x")])
        record = channel.events.as_dict()
        assert record["suppressed_transmissions"] == 1
        assert channel.events.injected == 1
        assert set(record) == {
            "suppressed_transmissions", "desynced_deliveries",
            "down_receiver_losses", "jammed", "dropped", "corrupted", "passed",
        }

    def test_fault_counters_reach_the_metrics_registry(self):
        plan = FaultPlan(
            outages=[NodeOutage(node=0)],
            messages=MessageFaults(drop=1.0),
        )
        channel = FaultyChannel(oracle(), plan, seed=0)
        registry = MetricsRegistry()
        channel.attach_metrics(registry)
        channel.begin_slot(0)
        channel.resolve([Transmission(sender=0, payload="x")])
        channel.resolve([Transmission(sender=1, payload="y")])
        snapshot = registry.snapshot()
        assert snapshot["faults.suppressed_transmissions"]["value"] == 1
        assert snapshot["channel.dropped_deliveries"]["value"] > 0
        assert snapshot["channel.resolve_calls"]["value"] == 2
