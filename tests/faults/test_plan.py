"""FaultPlan: validation, composition, serialisation, file loading."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultPlan,
    Jammer,
    MessageFaults,
    NodeOutage,
    SlotSkew,
    WakeupSpec,
    load_fault_plan,
)
from repro.schemas import FAULT_PLAN_SCHEMA


class TestComponents:
    def test_outage_window_semantics(self):
        outage = NodeOutage(node=3, start=10, stop=20)
        assert not outage.down(9)
        assert outage.down(10) and outage.down(19)
        assert not outage.down(20)

    def test_crash_without_restart_is_forever(self):
        crash = NodeOutage(node=0, start=5)
        assert crash.down(5) and crash.down(10**9)

    def test_outage_rejects_empty_window(self):
        with pytest.raises(ConfigurationError, match="stop"):
            NodeOutage(node=0, start=7, stop=7)

    def test_pulsed_jammer_duty_cycle(self):
        jammer = Jammer(x=0.0, y=0.0, power=10.0, start=4, period=3, duty=1)
        assert [jammer.active(s) for s in range(4, 10)] == [
            True, False, False, True, False, False,
        ]
        assert not jammer.active(3)

    def test_jammer_rejects_duty_beyond_period(self):
        with pytest.raises(ConfigurationError, match="duty"):
            Jammer(x=0.0, y=0.0, power=1.0, period=2, duty=3)

    def test_message_faults_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            MessageFaults(drop=1.5)
        with pytest.raises(ConfigurationError):
            MessageFaults(corrupt=-0.1)
        assert MessageFaults().empty
        assert not MessageFaults(corrupt=0.2).empty

    def test_skew_periodicity(self):
        skew = SlotSkew(node=1, period=4, phase=2)
        assert [skew.desynced(s) for s in range(2, 8)] == [
            True, False, False, False, True, False,
        ]


class TestWakeupSpec:
    def test_synchronous_default(self):
        schedule = WakeupSpec().schedule(5)
        assert list(schedule.wake_slots) == [0, 0, 0, 0, 0]

    def test_random_prefers_own_seed(self):
        spec = WakeupSpec(pattern="random", max_delay=50, seed=9)
        a = spec.schedule(20, seed=123)
        b = spec.schedule(20, seed=456)
        assert np.array_equal(a.wake_slots, b.wake_slots)

    def test_random_falls_back_to_run_seed(self):
        spec = WakeupSpec(pattern="random", max_delay=50)
        a = spec.schedule(20, seed=1)
        b = spec.schedule(20, seed=2)
        assert not np.array_equal(a.wake_slots, b.wake_slots)

    def test_bursts_wakes_in_waves(self):
        spec = WakeupSpec(pattern="bursts", interval=10, burst=3)
        schedule = spec.schedule(7)
        assert list(schedule.wake_slots) == [0, 0, 0, 10, 10, 10, 20]

    def test_burst_of_one_degenerates_to_staggered(self):
        bursty = WakeupSpec(pattern="bursts", interval=7, burst=1).schedule(6)
        staggered = WakeupSpec(pattern="staggered", interval=7).schedule(6)
        assert np.array_equal(bursty.wake_slots, staggered.wake_slots)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            WakeupSpec(pattern="avalanche")


class TestFaultPlan:
    def test_empty_plan_classifies_as_empty(self):
        plan = FaultPlan()
        assert plan.empty and not plan.has_channel_faults
        assert plan.max_node() == -1

    def test_wakeup_only_plan_has_no_channel_faults(self):
        plan = FaultPlan(wakeup=WakeupSpec(pattern="staggered", interval=5))
        assert not plan.has_channel_faults
        assert not plan.empty

    def test_component_type_validation(self):
        with pytest.raises(ConfigurationError, match="NodeOutage"):
            FaultPlan(outages=[{"node": 0}])
        with pytest.raises(ConfigurationError, match="MessageFaults"):
            FaultPlan(messages={"drop": 0.5})

    def test_max_node_spans_outages_and_skews(self):
        plan = FaultPlan(
            outages=[NodeOutage(node=4)], skews=[SlotSkew(node=9, period=2)]
        )
        assert plan.max_node() == 9

    def test_merge_concatenates_and_overrides(self):
        base = FaultPlan(
            outages=[NodeOutage(node=1)],
            messages=MessageFaults(drop=0.1),
            seed=7,
        )
        layer = FaultPlan(
            outages=[NodeOutage(node=2)],
            wakeup=WakeupSpec(pattern="staggered", interval=3),
        )
        merged = base.merge(layer)
        assert [o.node for o in merged.outages] == [1, 2]
        assert merged.messages.drop == 0.1  # layer's empty messages defer
        assert merged.wakeup is not None and merged.wakeup.interval == 3
        assert merged.seed == 7
        override = base.merge(FaultPlan(messages=MessageFaults(drop=0.4), seed=2))
        assert override.messages.drop == 0.4 and override.seed == 2

    def test_round_trip_is_exact(self):
        plan = FaultPlan(
            outages=[NodeOutage(node=1, start=3, stop=9)],
            jammers=[Jammer(x=1.0, y=2.0, power=5.0, period=4, duty=2)],
            messages=MessageFaults(drop=0.2, corrupt=0.05),
            skews=[SlotSkew(node=0, period=6, phase=1)],
            wakeup=WakeupSpec(pattern="random", max_delay=100, seed=3),
            jam_threshold=0.5,
            seed=11,
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["schema"] == FAULT_PLAN_SCHEMA
        assert FaultPlan.from_dict(payload) == plan

    def test_from_dict_rejects_unknown_keys_and_wrong_schema(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            FaultPlan.from_dict({"jitter": 1})
        with pytest.raises(ConfigurationError, match="schema"):
            FaultPlan.from_dict({"schema": "repro.faults/999"})
        with pytest.raises(ConfigurationError, match="unknown keys"):
            FaultPlan.from_dict({"outages": [{"node": 0, "spin": 3}]})

    def test_coerce_passes_plans_and_validates_mappings(self):
        plan = FaultPlan(seed=5)
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(plan.to_dict()) == plan

    def test_fallback_threshold_precedence(self):
        class Params:
            beta = 2.0
            noise = 0.25

        explicit = FaultPlan(jam_threshold=1.5)
        assert explicit.fallback_threshold(Params()) == 1.5
        derived = FaultPlan()
        assert derived.fallback_threshold(Params()) == 0.5
        with pytest.raises(ConfigurationError, match="jam_threshold"):
            derived.fallback_threshold(None)


class TestLoadFaultPlan:
    def test_loads_a_valid_file(self, tmp_path):
        plan = FaultPlan(messages=MessageFaults(drop=0.3), seed=1)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        assert load_fault_plan(path) == plan

    def test_missing_file_names_path(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_fault_plan(path)

    def test_invalid_json_names_line(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"schema": "x",\n  broken', encoding="utf-8")
        with pytest.raises(ConfigurationError, match=r"line \d+"):
            load_fault_plan(path)

    def test_object_without_schema_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"outages": []}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="schema"):
            load_fault_plan(path)

    def test_bad_field_error_names_file(self, tmp_path):
        path = tmp_path / "plan.json"
        payload = {"schema": FAULT_PLAN_SCHEMA, "messages": {"drop": 2.0}}
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="plan.json"):
            load_fault_plan(path)
