"""Unit tests for the argument-validation helpers."""

import math

import pytest

from repro._validation import (
    require_finite,
    require_in,
    require_int,
    require_nonnegative,
    require_positive,
    require_probability,
)
from repro.errors import ConfigurationError


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            require_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            require_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            require_positive("x", math.inf)


class TestRequireNonnegative:
    def test_accepts_zero(self):
        assert require_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_nonnegative("x", -0.1)


class TestRequireFinite:
    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            require_finite("x", "3")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_finite("x", True)

    def test_accepts_int(self):
        assert require_finite("x", 3) == 3


class TestRequireProbability:
    def test_bounds_inclusive(self):
        assert require_probability("p", 0.0) == 0.0
        assert require_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            require_probability("p", 1.01)


class TestRequireInt:
    def test_accepts_int(self):
        assert require_int("k", 5) == 5

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            require_int("k", 5.0)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_int("k", True)

    def test_minimum(self):
        with pytest.raises(ConfigurationError):
            require_int("k", 2, minimum=3)
        assert require_int("k", 3, minimum=3) == 3


class TestRequireIn:
    def test_accepts_member(self):
        assert require_in("mode", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="mode"):
            require_in("mode", "c", ("a", "b"))
