"""A controllable fixture experiment for orchestration tests.

Shaped exactly like a real ``repro.experiments`` module (``TITLE``,
``COLUMNS``, ``units``, ``run_single``, ``run``, ``check``) but cheap and
steerable: units can be told to sleep (timeout tests), to fail their
first N attempts (retry tests) or to drop an execution marker file
(so tests can count which units actually ran across processes).

The failure/marker knobs ride inside unit kwargs, so they flow through
pickling to pool workers with no extra plumbing.
"""

from __future__ import annotations

import os
import time
import uuid
from typing import Sequence

from repro.experiments._units import grid_units, run_units

TITLE = "FAKE: orchestration fixture experiment"
COLUMNS = ["x", "seed", "value"]

#: Batched twin for the --batch worker path (see repro.batch.planner).
BATCHED_UNITS = {"run_single": "run_single_batched"}

__all__ = [
    "BATCHED_UNITS",
    "COLUMNS",
    "TITLE",
    "check",
    "count_marks",
    "run",
    "run_single",
    "run_single_batched",
    "units",
]


def _mark(directory: str, label: str) -> int:
    """Drop one uniquely named marker file; return how many exist for label."""
    os.makedirs(directory, exist_ok=True)
    name = f"{label}-{os.getpid()}-{uuid.uuid4().hex}"
    with open(os.path.join(directory, name), "w", encoding="utf-8"):
        pass
    return count_marks(directory, label)


def count_marks(directory: str, label: str = "") -> int:
    """How many marker files with the given label prefix exist."""
    if not os.path.isdir(directory):
        return 0
    return sum(1 for name in os.listdir(directory) if name.startswith(label))


def run_single(
    seed: int,
    x: int,
    sleep_s: float = 0.0,
    fail_first: int = 0,
    fail_dir: str | None = None,
    exec_dir: str | None = None,
) -> dict:
    """One deterministic row; optionally slow, flaky or execution-marked."""
    if exec_dir is not None:
        _mark(exec_dir, f"exec-x{x}-s{seed}")
    if sleep_s:
        time.sleep(sleep_s)
    if fail_first and fail_dir is not None:
        attempts = _mark(fail_dir, f"fail-x{x}-s{seed}")
        if attempts <= fail_first:
            raise RuntimeError(f"injected failure {attempts} for x={x} seed={seed}")
    return {"x": x, "seed": seed, "value": x * 10 + seed}


def run_single_batched(seeds: Sequence[int], x: int, **knobs) -> list[dict]:
    """All seeds of one ``x`` as a single call; drops one batch marker."""
    exec_dir = knobs.get("exec_dir")
    if exec_dir is not None:
        _mark(exec_dir, f"batchcall-x{x}-S{len(seeds)}")
    return [run_single(seed, x, **knobs) for seed in seeds]


def units(
    seeds: Sequence[int] = (0, 1),
    xs: Sequence[int] = (1, 2, 3),
    **knobs,
) -> list[dict]:
    """Shardable work units, in canonical ``run()`` row order."""
    return grid_units("run_single", {"x": xs}, seeds, **knobs)


def run(seeds: Sequence[int] = (0, 1), xs: Sequence[int] = (1, 2, 3), **knobs) -> list[dict]:
    """The full grid, serially."""
    return run_units(__name__, units(seeds, xs, **knobs))


def check(rows: Sequence[dict]) -> None:
    """Every value is derivable from its coordinates."""
    assert rows, "no rows"
    assert all(row["value"] == row["x"] * 10 + row["seed"] for row in rows)
