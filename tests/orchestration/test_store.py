"""Run store: atomic persistence, validation, resume bookkeeping."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.orchestration import RunStore
from repro.orchestration.store import STORE_SCHEMA


def _record(index, rows=None):
    return {
        "shard": index,
        "start": index,
        "units": 1,
        "unit_rows": [len(rows or [])],
        "rows": rows or [{"x": index}],
        "wall_s": 0.01,
    }


class TestShardRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = RunStore(tmp_path)
        store.save_shard("fake", "abc", _record(3, rows=[{"x": 3, "v": 1}]))
        loaded = store.load_shard("fake", "abc", 3)
        assert loaded is not None
        assert loaded["rows"] == [{"x": 3, "v": 1}]
        assert loaded["schema"] == STORE_SCHEMA

    def test_missing_shard_is_none(self, tmp_path):
        assert RunStore(tmp_path).load_shard("fake", "abc", 0) is None

    def test_corrupt_shard_is_none(self, tmp_path):
        store = RunStore(tmp_path)
        path = store.shard_path("fake", "abc", 0)
        path.parent.mkdir(parents=True)
        path.write_text('{"schema": "repro.orchestration/1", "rows": [truncat')
        assert store.load_shard("fake", "abc", 0) is None

    def test_wrong_key_fields_are_none(self, tmp_path):
        store = RunStore(tmp_path)
        store.save_shard("fake", "abc", _record(0))
        # same bytes under a different experiment / hash / index: rejected
        data = store.shard_path("fake", "abc", 0).read_text()
        other = store.shard_path("fake", "xyz", 0)
        other.parent.mkdir(parents=True)
        other.write_text(data)
        assert store.load_shard("fake", "xyz", 0) is None
        shifted = store.shard_path("fake", "abc", 7)
        shifted.write_text(data)
        assert store.load_shard("fake", "abc", 7) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = RunStore(tmp_path)
        store.save_shard("fake", "abc", _record(0))
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []


class TestCompletedShards:
    def test_collects_only_valid(self, tmp_path):
        store = RunStore(tmp_path)
        store.save_shard("fake", "abc", _record(0))
        store.save_shard("fake", "abc", _record(2))
        store.shard_path("fake", "abc", 1).write_text("not json")
        done = store.completed_shards("fake", "abc", num_shards=4)
        assert sorted(done) == [0, 2]


class TestManifest:
    def test_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        units = [{"func": "run_single", "kwargs": {"seed": 0, "x": 1}}]
        store.write_manifest("fake", "abc", units, num_shards=1, shard_size=1)
        manifest = store.load_manifest("fake", "abc")
        assert manifest["units"] == units
        assert manifest["num_shards"] == 1

    def test_schema_mismatch_ignored(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest("fake", "abc", [], 1, 1)
        path = store.run_dir("fake", "abc") / "manifest.json"
        blob = json.loads(path.read_text())
        blob["schema"] = "something/else"
        path.write_text(json.dumps(blob))
        assert store.load_manifest("fake", "abc") is None

    def test_validate_resume_rejects_shard_count_change(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest("fake", "abc", [], num_shards=4, shard_size=2)
        with pytest.raises(ConfigurationError, match="shard"):
            store.validate_resume("fake", "abc", num_shards=8)
        store.validate_resume("fake", "abc", num_shards=4)  # same plan: fine
