"""CLI surface: ``repro sweep``, orchestrated ``repro experiment``, SIGINT.

The in-process tests drive ``main()`` directly on exp10 (sub-second).
The SIGINT test runs a real child process against the fixture experiment
and kills it mid-sweep — the only honest way to exercise the drain path.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestSweepCommand:
    def test_sweep_matches_serial_experiment_table(self, capsys):
        assert main(["experiment", "exp10"]) == 0
        serial = capsys.readouterr().out
        assert main(["sweep", "exp10", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # identical output modulo the orchestration summary line
        parallel_lines = [
            line for line in parallel.splitlines() if "shards over" not in line
        ]
        assert parallel_lines == serial.splitlines()
        assert "check passed" in parallel

    def test_sweep_persists_and_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["sweep", "exp10", "--jobs", "2", "--store", store]) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "exp10", "--jobs", "2", "--store", store, "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 resumed" in out
        assert "check passed" in out

    def test_sweep_writes_merged_telemetry(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.jsonl"
        store = str(tmp_path / "store")
        code = main(
            ["sweep", "exp10", "--jobs", "2", "--store", store,
             "--telemetry-out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        capsys.readouterr()
        assert main(["report", str(out_path)]) == 0
        report = capsys.readouterr().out
        assert "exported rows (8)" in report

    def test_experiment_routes_through_orchestrator(self, capsys, tmp_path):
        code = main(
            ["experiment", "exp10", "--jobs", "2",
             "--store", str(tmp_path / "store")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards over 2 jobs" in out
        assert "check passed" in out

    def test_sweep_rejects_resume_without_store(self, capsys):
        # the CLI boundary contract (ERR003): ConfigurationError becomes
        # a printed message and exit code 2, never a traceback
        assert main(["sweep", "exp10", "--jobs", "2", "--resume"]) == 2
        err = capsys.readouterr().err
        assert "repro:" in err and "store" in err


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestSigintDrain:
    def test_sigint_drains_then_resume_completes(self, tmp_path):
        """Interrupt a real sweep process; resume must finish the table."""
        store = tmp_path / "store"
        driver = (
            "import sys, json\n"
            "from repro.orchestration import run_sharded\n"
            "result = run_sharded(\n"
            "    'fake', module='tests.orchestration.fake_exp', jobs=2,\n"
            f"    store={str(store)!r}, install_sigint=True,\n"
            "    unit_kwargs={'seeds': [0, 1], 'xs': [1, 2, 3], 'sleep_s': 0.4},\n"
            "    progress=lambda m: print(m, flush=True),\n"
            ")\n"
            "sys.exit(130 if result.interrupted else 0)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT),
             env.get("PYTHONPATH", "")]
        )
        process = subprocess.Popen(
            [sys.executable, "-c", driver],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(REPO_ROOT),
        )
        # wait until at least one shard has been persisted, then interrupt
        for line in process.stdout:
            if "done:" in line:
                process.send_signal(signal.SIGINT)
                break
        process.stdout.read()
        assert process.wait(timeout=60) == 130

        # the interrupted run persisted a strict subset of the shards
        shard_files = list(store.rglob("shard-*.json"))
        assert 0 < len(shard_files) < 6

        from repro.orchestration import merged_rows, run_sharded

        from . import fake_exp

        resumed = run_sharded(
            "fake", module="tests.orchestration.fake_exp", jobs=2,
            store=store, resume=True,
            unit_kwargs={"seeds": [0, 1], "xs": [1, 2, 3], "sleep_s": 0.4},
        )
        assert resumed.complete
        assert resumed.resumed  # it really did skip persisted work
        serial = fake_exp.run(seeds=[0, 1], xs=[1, 2, 3])
        assert merged_rows(resumed) == serial
