"""Concurrent store access: readers never observe torn shard records.

The service shares one RunStore between executor worker threads (each
driving its own process pool) and HTTP reader threads serving results
and streams.  The store's contract under that concurrency is simple:
a reader sees a shard file either complete and valid, or not at all —
never a half-written or interleaved record.  These tests hammer that
contract with one (and then several) writers against many readers.
"""

from __future__ import annotations

import threading
import time

from repro.orchestration import RunStore

EXPERIMENT = "conc"
HASH = "deadbeefdeadbeef"


def payload(tag: int, rows: int = 400) -> dict:
    """A shard record big enough that a torn write would be visible."""
    return {
        "shard": 0,
        "rows": [{"tag": tag, "i": i, "value": tag * 1000 + i} for i in range(rows)],
        "wall_s": float(tag),
    }


def assert_untorn(record: dict) -> None:
    """Every row belongs to one write: no interleaving, no truncation."""
    rows = record["rows"]
    tags = {row["tag"] for row in rows}
    assert len(tags) == 1, f"rows from {len(tags)} different writes"
    tag = tags.pop()
    assert len(rows) == 400
    assert all(row["value"] == tag * 1000 + row["i"] for row in rows)
    assert record["wall_s"] == float(tag)


class TestOneWriterManyReaders:
    def test_readers_only_ever_see_complete_records(self, tmp_path):
        store = RunStore(tmp_path)
        stop = threading.Event()
        problems: list[str] = []

        def write() -> None:
            tag = 0
            while not stop.is_set():
                tag += 1
                store.save_shard(EXPERIMENT, HASH, payload(tag))

        def read() -> None:
            seen = 0
            deadline = time.monotonic() + 30.0
            while (
                not stop.is_set() or seen == 0
            ) and time.monotonic() < deadline:
                record = store.load_shard(EXPERIMENT, HASH, 0)
                if record is None:
                    continue
                seen += 1
                try:
                    assert_untorn(record)
                except AssertionError as failure:
                    problems.append(str(failure))
                    return

        writer = threading.Thread(target=write)
        readers = [threading.Thread(target=read) for _ in range(4)]
        writer.start()
        for thread in readers:
            thread.start()
        threading.Event().wait(1.0)
        stop.set()
        writer.join(timeout=30)
        for thread in readers:
            thread.join(timeout=30)
        assert not problems, problems[0]
        # the final state on disk is a valid record too
        assert_untorn(store.load_shard_record(EXPERIMENT, HASH, 0))


class TestConcurrentWriters:
    def test_racing_writers_last_rename_wins_whole(self, tmp_path):
        # two service workers (or a resumed sweep overlapping a draining
        # one) may write the same shard; unique temp names mean neither
        # can truncate the other's in-progress write, and whichever
        # rename lands last leaves a complete record
        store = RunStore(tmp_path)
        barrier = threading.Barrier(4)
        failures: list[BaseException] = []

        def write(tag: int) -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(50):
                    store.save_shard(EXPERIMENT, HASH, payload(tag))
            except BaseException as failure:
                failures.append(failure)

        writers = [
            threading.Thread(target=write, args=(tag,)) for tag in (1, 2, 3, 4)
        ]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=60)
        assert not failures, failures[0]
        assert_untorn(store.load_shard_record(EXPERIMENT, HASH, 0))

    def test_no_temp_litter_after_the_race(self, tmp_path):
        store = RunStore(tmp_path)
        for tag in (1, 2):
            store.save_shard(EXPERIMENT, HASH, payload(tag))
        leftovers = list(store.run_dir(EXPERIMENT, HASH).glob("*.tmp"))
        assert leftovers == []
