"""Executor: parity, retries, timeouts, interrupt + resume."""

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.orchestration import merged_rows, run_sharded

from . import fake_exp

FAKE = "tests.orchestration.fake_exp"


def _rows_json(rows):
    return json.dumps(rows, sort_keys=False, default=str)


class TestParity:
    def test_rows_identical_to_serial_run(self):
        serial = fake_exp.run(seeds=[0, 1, 2], xs=[1, 2, 3, 4])
        result = run_sharded(
            "fake", module=FAKE, jobs=2, shard_size=2,
            unit_kwargs={"seeds": [0, 1, 2], "xs": [1, 2, 3, 4]},
        )
        assert result.complete and not result.failures
        assert _rows_json(merged_rows(result)) == _rows_json(serial)

    def test_parity_independent_of_jobs_and_shard_size(self):
        serial = fake_exp.run(seeds=[0, 1], xs=[1, 2, 3])
        for jobs, shard_size in [(1, 1), (3, 1), (2, 4), (4, 2)]:
            result = run_sharded(
                "fake", module=FAKE, jobs=jobs, shard_size=shard_size,
                unit_kwargs={"seeds": [0, 1], "xs": [1, 2, 3]},
            )
            assert _rows_json(merged_rows(result)) == _rows_json(serial)

    def test_real_experiment_parity_exp10(self):
        from repro.experiments import exp10_physical_sweep as exp10

        result = run_sharded("exp10", jobs=2)
        assert result.complete
        rows = merged_rows(result)
        assert _rows_json(rows) == _rows_json(exp10.run())
        exp10.check(rows)

    def test_real_experiment_parity_exp7_with_seeds(self):
        from repro.experiments import exp07_palette_reduction as exp7

        result = run_sharded(
            "exp7", jobs=2, unit_kwargs={"seeds": range(2)}
        )
        assert result.complete
        assert _rows_json(merged_rows(result)) == _rows_json(
            exp7.run(seeds=range(2))
        )


class TestFailureModes:
    def test_flaky_shard_retries_then_succeeds(self, tmp_path):
        result = run_sharded(
            "fake", module=FAKE, jobs=2, retries=1,
            unit_kwargs={
                "seeds": [0], "xs": [1, 2],
                "fail_first": 1, "fail_dir": str(tmp_path / "fails"),
            },
        )
        assert result.complete
        assert result.failures == []
        # every unit failed once then passed on the retry
        assert fake_exp.count_marks(str(tmp_path / "fails")) == 4

    def test_persistent_failure_recorded_after_bounded_retries(self, tmp_path):
        result = run_sharded(
            "fake", module=FAKE, jobs=2, retries=2,
            unit_kwargs={
                "seeds": [0], "xs": [1],
                "fail_first": 99, "fail_dir": str(tmp_path / "fails"),
            },
        )
        assert not result.complete
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure["shard"] == 0
        assert failure["attempts"] == 3  # 1 initial + 2 retries
        assert "injected failure" in failure["error"]
        with pytest.raises(ConfigurationError, match="incomplete"):
            merged_rows(result)

    def test_shard_timeout_recorded(self):
        result = run_sharded(
            "fake", module=FAKE, jobs=1, retries=0, timeout_s=0.3,
            unit_kwargs={"seeds": [0], "xs": [1], "sleep_s": 10.0},
        )
        assert not result.complete
        assert len(result.failures) == 1
        assert "ShardTimeout" in result.failures[0]["error"]
        assert result.wall_s < 8.0  # nowhere near the 10s sleep

    def test_timed_out_shard_is_retried(self):
        result = run_sharded(
            "fake", module=FAKE, jobs=1, retries=1, timeout_s=0.3,
            unit_kwargs={"seeds": [0], "xs": [1], "sleep_s": 10.0},
        )
        assert len(result.failures) == 1
        assert result.failures[0]["attempts"] == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_sharded("exp99", jobs=1)

    def test_resume_without_store_rejected(self):
        with pytest.raises(ConfigurationError, match="resume"):
            run_sharded("fake", module=FAKE, resume=True)


class TestInterruptAndResume:
    def test_stop_drains_persists_and_resume_completes(self, tmp_path):
        store = tmp_path / "store"
        exec_dir = str(tmp_path / "execs")
        kwargs = {
            "seeds": [0, 1], "xs": [1, 2, 3],
            "sleep_s": 0.15, "exec_dir": exec_dir,
        }
        serial = fake_exp.run(seeds=[0, 1], xs=[1, 2, 3])

        stop = threading.Event()
        completions = []

        def progress(message):
            if "done:" in message:
                completions.append(message)
                stop.set()  # request a drain after the first completion

        first = run_sharded(
            "fake", module=FAKE, jobs=2, store=store, stop=stop,
            unit_kwargs=kwargs, progress=progress,
        )
        assert first.interrupted
        assert 0 < len(first.records) < first.num_shards
        executed_first = fake_exp.count_marks(exec_dir)
        # every persisted shard really ran, nothing ran twice
        assert executed_first == len(first.records)

        resumed = run_sharded(
            "fake", module=FAKE, jobs=2, store=store, resume=True,
            unit_kwargs=kwargs,
        )
        assert resumed.complete and not resumed.interrupted
        assert sorted(resumed.resumed) == sorted(first.records)
        # resume ran only the missing shards: total executions = unit count
        assert fake_exp.count_marks(exec_dir) == first.num_shards
        assert _rows_json(merged_rows(resumed)) == _rows_json(serial)

    def test_resume_reruns_corrupted_shard(self, tmp_path):
        from repro.orchestration import RunStore

        store = RunStore(tmp_path / "store")
        kwargs = {"seeds": [0], "xs": [1, 2]}
        first = run_sharded(
            "fake", module=FAKE, jobs=1, store=store, unit_kwargs=kwargs
        )
        assert first.complete
        # corrupt one persisted shard mid-file
        victim = store.shard_path("fake", first.config_hash, 1)
        victim.write_text(victim.read_text()[:25])
        resumed = run_sharded(
            "fake", module=FAKE, jobs=1, store=store, resume=True,
            unit_kwargs=kwargs,
        )
        assert resumed.complete
        assert resumed.resumed == [0]
        assert resumed.executed == [1]
        assert _rows_json(merged_rows(resumed)) == _rows_json(
            fake_exp.run(seeds=[0], xs=[1, 2])
        )

    def test_resume_with_different_shard_size_rejected(self, tmp_path):
        kwargs = {"seeds": [0], "xs": [1, 2, 3, 4]}
        run_sharded(
            "fake", module=FAKE, jobs=1, shard_size=1,
            store=tmp_path, unit_kwargs=kwargs,
        )
        with pytest.raises(ConfigurationError, match="shard"):
            run_sharded(
                "fake", module=FAKE, jobs=1, shard_size=2,
                store=tmp_path, resume=True, unit_kwargs=kwargs,
            )


class TestAllExperimentsShardable:
    def test_every_registry_entry_exposes_wellformed_units(self):
        from repro.experiments import REGISTRY
        from repro.orchestration import config_hash
        from repro.orchestration.store import STORE_SCHEMA

        for experiment, module in REGISTRY.items():
            units = module.units()
            assert units, f"{experiment} has no units"
            for work in units:
                assert set(work) == {"func", "kwargs"}
                assert callable(getattr(module, work["func"]))
            # the whole unit list must fingerprint cleanly
            assert config_hash(experiment, units, STORE_SCHEMA)

    def test_every_run_goes_through_run_units(self):
        """Serial/parallel parity is by construction: run() executes the
        exact unit list the shard planner sees.  Guard that construction."""
        import inspect

        from repro.experiments import REGISTRY

        for experiment, module in REGISTRY.items():
            source = inspect.getsource(module.run)
            assert "run_units" in source, (
                f"{experiment}.run() no longer delegates to run_units(); "
                "parallel sweeps can drift from the serial table"
            )


class TestResolverConfigHash:
    """--resume must treat dense and sparse sweeps as distinct work."""

    def test_sparse_changes_the_config_hash(self):
        from repro.experiments import exp01_colors_vs_delta as exp1
        from repro.orchestration import config_hash
        from repro.orchestration.store import STORE_SCHEMA

        dense = config_hash("exp1", exp1.units(seeds=(0,)), STORE_SCHEMA)
        sparse = config_hash(
            "exp1", exp1.units(seeds=(0,), resolver="sparse"), STORE_SCHEMA
        )
        assert dense != sparse

    def test_dense_units_unchanged_by_resolver_plumbing(self):
        """resolver=None must be dropped from the units entirely, so every
        pre-resolver dense store keeps resuming under its old hash."""
        from repro.experiments import exp01_colors_vs_delta as exp1

        plain = exp1.units(seeds=(0, 1))
        explicit_none = exp1.units(seeds=(0, 1), resolver=None)
        assert plain == explicit_none
        for work in plain:
            assert "resolver" not in work["kwargs"]

    def test_run_sharded_folds_sparse_into_hash(self):
        dense = run_sharded(
            "exp1", jobs=1,
            unit_kwargs={"seeds": [0], "extents": [4.0], "n": 20},
        )
        explicit_dense = run_sharded(
            "exp1", jobs=1, resolver="dense",
            unit_kwargs={"seeds": [0], "extents": [4.0], "n": 20},
        )
        sparse = run_sharded(
            "exp1", jobs=1, resolver="sparse",
            unit_kwargs={"seeds": [0], "extents": [4.0], "n": 20},
        )
        assert dense.complete and sparse.complete
        assert dense.config_hash == explicit_dense.config_hash
        assert dense.config_hash != sparse.config_hash
        # extent 4.0 at n=20 keeps every pair near: identical rows
        assert _rows_json(merged_rows(dense)) == _rows_json(merged_rows(sparse))

    def test_invalid_resolver_rejected(self):
        with pytest.raises(ConfigurationError, match="resolver"):
            run_sharded("exp1", jobs=1, resolver="banded")

    def test_experiment_without_resolver_support_raises(self):
        """Silently running dense when sparse was requested would poison
        the store; exp10's units() takes no resolver, so it must refuse."""
        with pytest.raises(ConfigurationError, match="resolver"):
            run_sharded("exp10", jobs=1, resolver="sparse")
