"""Shard planner: determinism, coverage, config hashing."""

import pytest

from repro.errors import ConfigurationError
from repro.orchestration import config_hash, plan_shards
from repro.orchestration.store import STORE_SCHEMA

from . import fake_exp


class TestPlanShards:
    def test_unit_sized_shards_cover_everything_in_order(self):
        units = fake_exp.units(seeds=[0, 1], xs=[1, 2])
        shards = plan_shards(units, shard_size=1)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert [s.start for s in shards] == [0, 1, 2, 3]
        flattened = [u for s in shards for u in s.units]
        assert flattened == units

    def test_uneven_tail_shard(self):
        units = fake_exp.units(seeds=[0], xs=[1, 2, 3, 4, 5])
        shards = plan_shards(units, shard_size=2)
        assert [len(s.units) for s in shards] == [2, 2, 1]
        assert [s.start for s in shards] == [0, 2, 4]
        assert shards[2].stop == 5

    def test_plan_is_deterministic(self):
        units = fake_exp.units()
        assert plan_shards(units, 2) == plan_shards(units, 2)

    def test_oversized_shard_is_one_shard(self):
        units = fake_exp.units(seeds=[0], xs=[1, 2])
        shards = plan_shards(units, shard_size=99)
        assert len(shards) == 1
        assert shards[0].units == tuple(units)

    def test_empty_units_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards([], 1)

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(fake_exp.units(), 0)


class TestConfigHash:
    def test_stable_for_identical_work(self):
        a = config_hash("fake", fake_exp.units(seeds=[0, 1]), STORE_SCHEMA)
        b = config_hash("fake", fake_exp.units(seeds=[0, 1]), STORE_SCHEMA)
        assert a == b

    def test_changes_with_seeds(self):
        a = config_hash("fake", fake_exp.units(seeds=[0, 1]), STORE_SCHEMA)
        b = config_hash("fake", fake_exp.units(seeds=[0, 2]), STORE_SCHEMA)
        assert a != b

    def test_changes_with_grid(self):
        a = config_hash("fake", fake_exp.units(xs=[1, 2]), STORE_SCHEMA)
        b = config_hash("fake", fake_exp.units(xs=[1, 3]), STORE_SCHEMA)
        assert a != b

    def test_changes_with_experiment_and_schema(self):
        units = fake_exp.units()
        assert config_hash("fake", units, STORE_SCHEMA) != config_hash(
            "other", units, STORE_SCHEMA
        )
        assert config_hash("fake", units, STORE_SCHEMA) != config_hash(
            "fake", units, "repro.orchestration/2"
        )

    def test_non_json_values_hash_via_repr(self):
        from repro.sinr.params import PhysicalParams

        units = fake_exp.units(knob=PhysicalParams())
        assert config_hash("fake", units, STORE_SCHEMA)
