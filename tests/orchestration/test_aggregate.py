"""Aggregator: canonical merge and telemetry artifact merging."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.orchestration import (
    RunStore,
    merged_rows,
    run_sharded,
    write_merged_artifact,
)
from repro.telemetry import read_run

from . import fake_exp

FAKE = "tests.orchestration.fake_exp"
KW = {"seeds": [0, 1], "xs": [1, 2]}


def _sweep(store=None):
    return run_sharded("fake", module=FAKE, jobs=2, store=store, unit_kwargs=KW)


class TestMergedArtifact:
    def test_without_store_rows_from_records(self, tmp_path):
        result = _sweep()
        out = tmp_path / "merged.jsonl"
        artifact = write_merged_artifact(out, result, meta={"who": "test"})
        assert artifact.schema == "repro.telemetry/1"
        assert artifact.command == "sweep"
        assert artifact.meta == {"who": "test"}
        assert artifact.rows == merged_rows(result)
        assert artifact.summary["shards"] == result.num_shards
        assert artifact.summary["rows"] == len(artifact.rows)

    def test_with_store_merges_per_shard_artifacts(self, tmp_path):
        store = RunStore(tmp_path / "store")
        result = _sweep(store=store)
        # the workers left one telemetry artifact per shard
        shard_artifacts = [
            store.telemetry_path("fake", result.config_hash, index)
            for index in range(result.num_shards)
        ]
        assert all(path.exists() for path in shard_artifacts)
        for path in shard_artifacts:
            shard_run = read_run(path)
            assert shard_run.command == "sweep-shard"
            assert shard_run.summary["rows"] == len(shard_run.rows)

        out = tmp_path / "merged.jsonl"
        artifact = write_merged_artifact(out, result, store=store)
        assert artifact.rows == merged_rows(result)
        assert artifact.summary["shard_artifacts"] == result.num_shards

    def test_missing_shard_artifact_falls_back_to_records(self, tmp_path):
        store = RunStore(tmp_path / "store")
        result = _sweep(store=store)
        # simulate a store written by an older run without telemetry
        for index in range(result.num_shards):
            store.telemetry_path("fake", result.config_hash, index).unlink()
        artifact = write_merged_artifact(tmp_path / "m.jsonl", result, store=store)
        assert artifact.rows == merged_rows(result)
        assert "shard_artifacts" not in artifact.summary

    def test_merged_artifact_round_trips_and_orders_rows(self, tmp_path):
        result = _sweep()
        out = tmp_path / "merged.jsonl"
        write_merged_artifact(out, result)
        again = read_run(out)
        serial = fake_exp.run(seeds=[0, 1], xs=[1, 2])
        assert json.dumps(again.rows) == json.dumps(serial)


class TestMergedRows:
    def test_incomplete_merge_refused(self):
        result = _sweep()
        del result.records[1]
        with pytest.raises(ConfigurationError, match=r"shards \[1\]"):
            merged_rows(result)
