"""Unit tests for independence checks and greedy MIS."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.deployment import uniform_deployment
from repro.graphs.independent import greedy_mis, is_independent_set, violating_pairs


class TestViolatingPairs:
    def test_finds_close_pair(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [5.0, 5.0]])
        assert violating_pairs(positions, [0, 1, 2], 1.0) == [(0, 1)]

    def test_boundary_counts_as_violation(self):
        # independence requires distance strictly greater than R_T
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert violating_pairs(positions, [0, 1], 1.0) == [(0, 1)]

    def test_none_when_spread(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        assert violating_pairs(positions, [0, 1, 2], 1.0) == []

    def test_subset_membership_only(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [0.6, 0.0]])
        # nodes 0 and 1 are close but only {0, 2} are members... 0-2 close too
        assert violating_pairs(positions, [0], 1.0) == []
        assert violating_pairs(positions, [1, 2], 1.0) == [(1, 2)]

    def test_duplicated_members_deduplicated(self):
        positions = np.array([[0.0, 0.0], [3.0, 0.0]])
        assert violating_pairs(positions, [0, 0, 1], 1.0) == []

    def test_radius_validation(self):
        with pytest.raises(ConfigurationError):
            violating_pairs(np.zeros((2, 2)), [0, 1], 0.0)


class TestIsIndependentSet:
    def test_empty_and_singleton(self):
        positions = np.array([[0.0, 0.0], [0.1, 0.0]])
        assert is_independent_set(positions, [], 1.0)
        assert is_independent_set(positions, [0], 1.0)

    def test_detects_violation(self):
        positions = np.array([[0.0, 0.0], [0.1, 0.0]])
        assert not is_independent_set(positions, [0, 1], 1.0)


class TestGreedyMis:
    def test_result_is_independent(self):
        dep = uniform_deployment(120, 6.0, seed=8)
        mis = greedy_mis(dep.positions, 1.0)
        assert is_independent_set(dep.positions, mis, 1.0)

    def test_result_is_maximal(self):
        dep = uniform_deployment(120, 6.0, seed=8)
        positions = dep.positions
        mis = set(greedy_mis(positions, 1.0))
        for node in range(len(positions)):
            if node in mis:
                continue
            covered = any(
                np.hypot(*(positions[node] - positions[m])) <= 1.0 for m in mis
            )
            assert covered, f"node {node} neither chosen nor covered"

    def test_respects_order(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0]])
        assert greedy_mis(positions, 1.0, order=[1, 0]) == [1]
        assert greedy_mis(positions, 1.0, order=[0, 1]) == [0]

    def test_all_isolated_nodes_chosen(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        assert greedy_mis(positions, 1.0) == [0, 1, 2]
