"""Unit tests for unit disk graph construction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.deployment import grid_deployment, uniform_deployment
from repro.graphs.udg import UnitDiskGraph


@pytest.fixture()
def line_graph():
    """Four collinear nodes spaced 0.8 apart: a path under radius 1."""
    positions = np.array([[0.0, 0.0], [0.8, 0.0], [1.6, 0.0], [2.4, 0.0]])
    return UnitDiskGraph(positions, radius=1.0)


class TestAdjacency:
    def test_path_structure(self, line_graph):
        np.testing.assert_array_equal(line_graph.neighbors(0), [1])
        np.testing.assert_array_equal(line_graph.neighbors(1), [0, 2])
        np.testing.assert_array_equal(line_graph.neighbors(3), [2])

    def test_has_edge(self, line_graph):
        assert line_graph.has_edge(0, 1)
        assert line_graph.has_edge(1, 0)
        assert not line_graph.has_edge(0, 2)
        assert not line_graph.has_edge(0, 0)

    def test_edge_boundary_inclusive(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        graph = UnitDiskGraph(positions, radius=1.0)
        assert graph.has_edge(0, 1)

    def test_edges_listed_once(self, line_graph):
        assert sorted(line_graph.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_edge_count(self, line_graph):
        assert line_graph.edge_count == 3

    def test_degrees(self, line_graph):
        np.testing.assert_array_equal(line_graph.degrees, [1, 2, 2, 1])
        assert line_graph.max_degree == 2

    def test_matches_brute_force(self):
        dep = uniform_deployment(80, 5.0, seed=2)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        positions = dep.positions
        for u in range(graph.n):
            diffs = positions - positions[u]
            dist = np.hypot(diffs[:, 0], diffs[:, 1])
            expected = np.flatnonzero((dist <= 1.0) & (np.arange(graph.n) != u))
            np.testing.assert_array_equal(graph.neighbors(u), expected)

    def test_node_index_validation(self, line_graph):
        with pytest.raises(ConfigurationError):
            line_graph.neighbors(99)
        with pytest.raises(ConfigurationError):
            line_graph.degree(-1)

    def test_accepts_deployment(self):
        dep = uniform_deployment(10, 5.0, seed=0)
        graph = UnitDiskGraph(dep, radius=1.0)
        assert graph.n == 10

    def test_radius_validation(self):
        with pytest.raises(ConfigurationError):
            UnitDiskGraph(np.zeros((2, 2)), radius=0.0)


class TestConnectivity:
    def test_path_is_connected(self, line_graph):
        assert line_graph.is_connected()
        assert len(line_graph.connected_components()) == 1

    def test_two_components(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [10.0, 10.0]])
        graph = UnitDiskGraph(positions, radius=1.0)
        components = graph.connected_components()
        assert len(components) == 2
        np.testing.assert_array_equal(components[0], [0, 1])  # largest first
        np.testing.assert_array_equal(components[1], [2])
        assert not graph.is_connected()

    def test_grid_connected(self):
        dep = grid_deployment(side=5, spacing=0.9)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        assert graph.is_connected()

    def test_nodes_within_larger_radius(self, line_graph):
        found = line_graph.nodes_within(0, 2.0)
        np.testing.assert_array_equal(found, [1, 2])
