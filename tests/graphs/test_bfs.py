"""Unit tests for BFS utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.deployment import uniform_deployment
from repro.graphs.bfs import bfs_distances, bfs_tree, diameter, eccentricity
from repro.graphs.udg import UnitDiskGraph


def path_graph(n=5, spacing=0.9):
    positions = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
    return UnitDiskGraph(positions, radius=1.0)


class TestBfsDistances:
    def test_path_distances(self):
        graph = path_graph(5)
        np.testing.assert_array_equal(bfs_distances(graph, 0), [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(bfs_distances(graph, 2), [2, 1, 0, 1, 2])

    def test_unreachable_marked(self):
        positions = np.array([[0.0, 0.0], [10.0, 10.0]])
        graph = UnitDiskGraph(positions, radius=1.0)
        np.testing.assert_array_equal(bfs_distances(graph, 0), [0, -1])

    def test_source_validated(self):
        with pytest.raises(ConfigurationError):
            bfs_distances(path_graph(3), 99)

    def test_symmetric(self):
        dep = uniform_deployment(60, 5.0, seed=4)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        d_ab = bfs_distances(graph, 3)[17]
        d_ba = bfs_distances(graph, 17)[3]
        assert d_ab == d_ba


class TestBfsTree:
    def test_parents_decrease_depth(self):
        dep = uniform_deployment(60, 5.0, seed=4)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        dist = bfs_distances(graph, 0)
        parent = bfs_tree(graph, 0)
        for node in range(graph.n):
            if dist[node] <= 0:
                continue
            assert dist[parent[node]] == dist[node] - 1
            assert graph.has_edge(node, int(parent[node]))

    def test_root_self_parent(self):
        assert bfs_tree(path_graph(3), 1)[1] == 1

    def test_unreachable_no_parent(self):
        positions = np.array([[0.0, 0.0], [10.0, 10.0]])
        graph = UnitDiskGraph(positions, radius=1.0)
        assert bfs_tree(graph, 0)[1] == -1

    def test_canonical_smallest_parent(self):
        # diamond: node 3 reachable at depth 2 via 1 or 2; parent must be 1
        positions = np.array(
            [[0.0, 0.0], [1.0, 0.4], [1.0, -0.4], [2.0, 0.0]]
        )
        graph = UnitDiskGraph(positions, radius=1.2)
        assert bfs_tree(graph, 0)[3] == 1


class TestEccentricityDiameter:
    def test_path(self):
        graph = path_graph(6)
        assert eccentricity(graph, 0) == 5
        assert eccentricity(graph, 3) == 3
        assert diameter(graph) == 5

    def test_clique(self):
        positions = np.array([[0, 0], [0.1, 0], [0, 0.1]], dtype=float)
        graph = UnitDiskGraph(positions, radius=1.0)
        assert diameter(graph) == 1

    def test_diameter_upper_bounds_eccentricities(self):
        dep = uniform_deployment(40, 4.0, seed=5)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        d = diameter(graph)
        assert all(eccentricity(graph, v) <= d for v in range(graph.n))
