"""Unit tests for geometric graph powers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.deployment import uniform_deployment
from repro.graphs.power import power_graph
from repro.graphs.udg import UnitDiskGraph


class TestPowerGraph:
    def test_radius_scales(self):
        graph = UnitDiskGraph(np.zeros((1, 2)), radius=1.0)
        assert power_graph(graph, 2.5).radius == pytest.approx(2.5)

    def test_edges_grow_with_d(self):
        dep = uniform_deployment(60, 6.0, seed=1)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        g2 = power_graph(graph, 2.0)
        assert g2.edge_count >= graph.edge_count
        # every original edge survives
        for u, v in graph.edges():
            assert g2.has_edge(u, v)

    def test_d_one_is_identity_structure(self):
        dep = uniform_deployment(40, 5.0, seed=2)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        g1 = power_graph(graph, 1.0)
        assert sorted(g1.edges()) == sorted(graph.edges())

    def test_fractional_d(self):
        positions = np.array([[0.0, 0.0], [1.4, 0.0]])
        graph = UnitDiskGraph(positions, radius=1.0)
        assert not graph.has_edge(0, 1)
        assert power_graph(graph, 1.5).has_edge(0, 1)

    def test_degree_growth_bounded_by_paper(self):
        # Delta_{G^d} <= (2d + 1)^2 * Delta (Section V), checked empirically
        dep = uniform_deployment(150, 8.0, seed=3)
        graph = UnitDiskGraph(dep.positions, radius=1.0)
        d = 2.0
        gd = power_graph(graph, d)
        assert gd.max_degree <= (2 * d + 1) ** 2 * max(1, graph.max_degree)

    def test_rejects_nonpositive_d(self):
        graph = UnitDiskGraph(np.zeros((1, 2)), radius=1.0)
        with pytest.raises(ConfigurationError):
            power_graph(graph, 0.0)
