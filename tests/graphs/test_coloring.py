"""Unit tests for the Coloring value type."""

import numpy as np
import pytest

from repro.errors import ColoringError
from repro.graphs.coloring import Coloring


@pytest.fixture()
def square_positions():
    """Unit square corners; radius 1 connects the sides, not the diagonal."""
    return np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestConstruction:
    def test_basic(self):
        coloring = Coloring(np.array([0, 1, 2]))
        assert coloring.n == 3
        assert coloring.num_colors == 3

    def test_rejects_negative(self):
        with pytest.raises(ColoringError):
            Coloring(np.array([0, -1]))

    def test_rejects_floats(self):
        with pytest.raises(ColoringError):
            Coloring(np.array([0.5, 1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ColoringError):
            Coloring(np.zeros((2, 2), dtype=np.int64))

    def test_colors_frozen(self):
        coloring = Coloring(np.array([0, 1]))
        with pytest.raises(ValueError):
            coloring.colors[0] = 5

    def test_max_color_sparse_palette(self):
        coloring = Coloring(np.array([0, 40, 7]))
        assert coloring.max_color == 40
        assert coloring.num_colors == 3

    def test_empty_max_color_raises(self):
        with pytest.raises(ColoringError):
            Coloring(np.array([], dtype=np.int64)).max_color


class TestClasses:
    def test_color_classes(self):
        coloring = Coloring(np.array([1, 0, 1, 2]))
        classes = coloring.color_classes()
        np.testing.assert_array_equal(classes[1], [0, 2])
        np.testing.assert_array_equal(classes[0], [1])

    def test_class_sizes(self):
        coloring = Coloring(np.array([1, 0, 1, 2]))
        assert coloring.class_sizes() == {1: 2, 0: 1, 2: 1}


class TestValidity:
    def test_proper_square_2coloring(self, square_positions):
        # opposite corners share a color: proper at distance 1 (side = 1)?
        # sides are length 1 <= radius -> adjacent; diagonal sqrt(2) -> not
        coloring = Coloring(np.array([0, 1, 0, 1]))
        assert coloring.is_valid(square_positions, radius=1.0, d=1.0)

    def test_conflict_detected(self, square_positions):
        coloring = Coloring(np.array([0, 0, 1, 1]))
        conflicts = coloring.conflicts(square_positions, radius=1.0, d=1.0)
        assert (0, 1) in conflicts

    def test_distance_2_requires_more_colors(self, square_positions):
        # at d = 2 the diagonal also conflicts
        coloring = Coloring(np.array([0, 1, 0, 1]))
        assert not coloring.is_valid(square_positions, radius=1.0, d=2.0)
        rainbow = Coloring(np.array([0, 1, 2, 3]))
        assert rainbow.is_valid(square_positions, radius=1.0, d=2.0)

    def test_validate_raises_with_context(self, square_positions):
        coloring = Coloring(np.array([0, 0, 1, 1]))
        with pytest.raises(ColoringError, match="conflict"):
            coloring.validate(square_positions, radius=1.0)

    def test_size_mismatch(self, square_positions):
        with pytest.raises(ColoringError):
            Coloring(np.array([0, 1])).conflicts(square_positions, 1.0)


class TestCompaction:
    def test_compacted_dense_palette(self):
        coloring = Coloring(np.array([5, 40, 5, 7]))
        compact = coloring.compacted()
        assert compact.max_color == 2
        assert compact.num_colors == 3

    def test_compaction_preserves_equality_pattern(self):
        colors = np.array([5, 40, 5, 7, 40])
        compact = Coloring(colors).compacted()
        for i in range(5):
            for j in range(5):
                assert (colors[i] == colors[j]) == (
                    compact.colors[i] == compact.colors[j]
                )
