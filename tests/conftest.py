"""Shared fixtures.

Full MW coloring runs cost seconds; the session-scoped fixtures here run
them once and let every integration test inspect the same result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PhysicalParams,
    UnitDiskGraph,
    uniform_deployment,
)
from repro.coloring.runner import run_mw_coloring_audited


@pytest.fixture(scope="session")
def params() -> PhysicalParams:
    """Default physics normalised to R_T = 1 (coordinates in range units)."""
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="session")
def small_deployment():
    """A 60-node deployment small enough for second-scale protocol runs."""
    return uniform_deployment(n=60, extent=5.0, seed=11)


@pytest.fixture(scope="session")
def small_graph(small_deployment, params) -> UnitDiskGraph:
    """UDG of the small deployment at communication range."""
    return UnitDiskGraph(small_deployment.positions, params.r_t)


@pytest.fixture(scope="session")
def mw_run(small_deployment, params):
    """One audited MW coloring run shared by the integration tests."""
    result, auditor = run_mw_coloring_audited(
        small_deployment, params, seed=2, trace=True
    )
    return result, auditor


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
