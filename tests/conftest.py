"""Shared fixtures.

Full MW coloring runs cost seconds; the session-scoped fixtures here run
them once and let every integration test inspect the same result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PhysicalParams,
    UnitDiskGraph,
    uniform_deployment,
)
from repro.coloring.runner import run_mw_coloring_audited


@pytest.fixture(scope="session")
def params() -> PhysicalParams:
    """Default physics normalised to R_T = 1 (coordinates in range units)."""
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="session")
def small_deployment():
    """A 60-node deployment small enough for second-scale protocol runs."""
    return uniform_deployment(n=60, extent=5.0, seed=11)


@pytest.fixture(scope="session")
def small_graph(small_deployment, params) -> UnitDiskGraph:
    """UDG of the small deployment at communication range."""
    return UnitDiskGraph(small_deployment.positions, params.r_t)


@pytest.fixture(scope="session")
def mw_run(small_deployment, params):
    """One audited MW coloring run shared by the integration tests."""
    result, auditor = run_mw_coloring_audited(
        small_deployment, params, seed=2, trace=True
    )
    return result, auditor


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


def mutate_file(path, mode: str, seed: int) -> bool:
    """Deterministically corrupt an on-disk artifact for fuzz tests.

    ``mode`` picks one corruption family; the generator seeded with
    ``seed`` picks where it lands, so every failure reproduces from the
    (mode, seed) pair alone.  Returns False when the file is too small
    for the requested mode (caller should skip that case, not fail).

    =============  ======================================================
    ``truncate``     cut the file mid-byte (killed-run tail)
    ``flip``         flip one bit of one byte (disk/transfer corruption)
    ``delete_line``  drop one whole line (partial copy)
    ``dup_line``     duplicate one line in place (retry artifact)
    ``garbage``      overwrite one line with non-JSON text
    =============  ======================================================
    """
    import pathlib

    path = pathlib.Path(path)
    gen = np.random.default_rng(seed)
    raw = path.read_bytes()
    if mode == "truncate":
        if len(raw) < 2:
            return False
        cut = int(gen.integers(1, len(raw)))
        path.write_bytes(raw[:cut])
        return True
    if mode == "flip":
        if not raw:
            return False
        at = int(gen.integers(0, len(raw)))
        bit = 1 << int(gen.integers(0, 8))
        path.write_bytes(raw[:at] + bytes([raw[at] ^ bit]) + raw[at + 1:])
        return True
    lines = raw.decode("utf-8", errors="surrogateescape").splitlines(keepends=True)
    if not lines:
        return False
    at = int(gen.integers(0, len(lines)))
    if mode == "delete_line":
        del lines[at]
    elif mode == "dup_line":
        lines.insert(at, lines[at])
    elif mode == "garbage":
        lines[at] = "{not json" + str(int(gen.integers(0, 1000))) + "\n"
    else:
        raise ValueError(f"unknown mutation mode {mode!r}")
    path.write_text(
        "".join(lines), encoding="utf-8", errors="surrogateescape"
    )
    return True


#: Every corruption family ``mutate_file`` implements.
MUTATION_MODES = ("truncate", "flip", "delete_line", "dup_line", "garbage")
