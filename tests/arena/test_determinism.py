"""Determinism regressions for every zoo entry.

Each registered algorithm must be bit-identical across (a) repeated
runs of the same task, (b) telemetry attached vs. absent — metrics are
strictly read-only over a run, (c) the dense vs. the sparse SINR
resolver in the all-near regime where the two engines are exactly
equal (the idiom of tests/batch/test_sparse_parity.py), and (d) the
serial experiment runner vs. ``repro sweep --jobs 2`` sharding of the
same arena grid.

Algorithms come from the registry, so a new entry inherits all four
contracts by registering.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import (
    algorithm_names,
    all_algorithms,
    run_coloring_algorithm,
)
from repro.experiments import exp14_arena as exp14
from repro.geometry.deployment import uniform_deployment
from repro.orchestration import merged_rows, run_sharded
from repro.telemetry import Telemetry

from .conftest import PARAMS, corpus_deployment

ALGORITHMS = algorithm_names()
PROTOCOLS = tuple(
    entry.name for entry in all_algorithms() if entry.model == "sinr-protocol"
)
#: Small enough that every pair sits inside the interference range, the
#: regime where the sparse resolver equals the dense one bit for bit.
ALL_NEAR = dict(n=14, extent=2.2, seed=3)


def fingerprint(outcome) -> tuple:
    return (
        outcome.algorithm,
        outcome.colors.tolist(),
        outcome.decision_slots.tolist(),
        outcome.palette_bound,
        outcome.completed,
        outcome.convergence_slots,
        tuple(outcome.audit_violations or ()),
    )


def canonical(rows: list[dict]) -> str:
    ordered = sorted(rows, key=lambda row: (row["algorithm"], row["seed"]))
    return json.dumps(ordered, sort_keys=True, default=str)


class TestRepeatRunIdentity:
    @pytest.mark.parametrize("seed", (0, 1))
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_same_task_same_bits(self, algorithm, seed):
        deployment = corpus_deployment(seed)
        first = run_coloring_algorithm(
            algorithm, deployment, PARAMS, seed=seed
        )
        second = run_coloring_algorithm(
            algorithm, deployment, PARAMS, seed=seed
        )
        assert fingerprint(first) == fingerprint(second)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_seed_actually_binds(self, algorithm, arena_run):
        # Not a vacuous contract: some pair of corpus seeds must differ
        # (different deployments if nothing else).
        prints = [
            fingerprint(arena_run(algorithm, seed)) for seed in (0, 1, 2)
        ]
        assert any(prints[0] != other for other in prints[1:])


class TestTelemetryTransparency:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_metrics_attachment_changes_nothing(self, algorithm, arena_run):
        seed = 4
        bare = arena_run(algorithm, seed)
        bundle = Telemetry(metrics=True, profile=False, trace=False)
        observed = run_coloring_algorithm(
            algorithm, corpus_deployment(seed), PARAMS,
            seed=seed, telemetry=bundle,
        )
        assert fingerprint(bare) == fingerprint(observed)

    @pytest.mark.parametrize("algorithm", PROTOCOLS)
    def test_protocol_runs_label_their_telemetry(self, algorithm):
        bundle = Telemetry(metrics=True, profile=False, trace=False)
        run_coloring_algorithm(
            algorithm, corpus_deployment(5), PARAMS, seed=5, telemetry=bundle,
        )
        assert bundle.meta["algorithm"] == algorithm
        snapshot = bundle.metrics.snapshot()
        assert snapshot["coloring.decisions"]["value"] == 20


class TestResolverParity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_sparse_equals_dense_when_all_near(self, algorithm):
        deployment = uniform_deployment(**ALL_NEAR)
        dense = run_coloring_algorithm(
            algorithm, deployment, PARAMS, seed=7, resolver="dense"
        )
        sparse = run_coloring_algorithm(
            algorithm, deployment, PARAMS, seed=7, resolver="sparse"
        )
        assert fingerprint(dense) == fingerprint(sparse)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_sparse_repeats_bit_identical(self, algorithm):
        deployment = corpus_deployment(6)
        runs = [
            run_coloring_algorithm(
                algorithm, deployment, PARAMS, seed=6, resolver="sparse"
            )
            for _ in range(2)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])


class TestSerialVsShardedSweep:
    GRID = dict(seeds=[0, 1], n=14, extent=2.6)
    SUBSET = "fuchs_prutkin,greedy,kuhn_multicolor"

    def test_jobs2_rows_match_serial_rows(self):
        serial = exp14.run(algorithm=self.SUBSET, **self.GRID)
        sharded = run_sharded(
            "exp14", jobs=2,
            unit_kwargs=dict(self.GRID),
            algorithm=self.SUBSET,
        )
        assert sharded.complete
        assert canonical(merged_rows(sharded)) == canonical(serial)
        exp14.check(merged_rows(sharded))

    def test_algorithm_selector_distinguishes_config_hashes(self):
        plans = {
            selector: run_sharded(
                "exp14", jobs=1,
                unit_kwargs=dict(seeds=[0], n=12, extent=2.4),
                algorithm=selector,
            ).config_hash
            for selector in ("greedy", "luby", "greedy,luby")
        }
        assert len(set(plans.values())) == 3
