"""The conformance contract every zoo entry must satisfy.

Algorithms are discovered from the registry — nothing here names an
entry in a parametrize list by hand — so registering a new algorithm
subscribes it to this whole corpus:

* fault-free: over all 60 corpus seeds, the run completes, the coloring
  is proper (:func:`repro.invariants.independence_violations`) and the
  run-exact palette bound holds (:func:`repro.invariants.palette_violations`);
* under the PR-5 fault plans (crash outages, sleep windows, message
  loss): protocol entries keep independence among survivors — a downed
  node may break its own decision, never a fault-free pair — while
  non-protocol entries are literally fault-immune (bit-identical rows);
* dual-engine: protocol state machines built via ``build_nodes`` run
  under the per-slot engine through
  :class:`repro.algorithms.EventNodeProcess` and satisfy the same
  invariants there (the engines agree in distribution, not bit for bit,
  so this checks invariants, not bytes).

The registry surface itself (lookup errors, duplicate rejection, model
vocabulary) is locked at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    ColoringAlgorithm,
    EventNodeProcess,
    ProtocolContext,
    algorithm_names,
    all_algorithms,
    get_algorithm,
    register_algorithm,
    run_coloring_algorithm,
)
from repro.algorithms.base import MODELS, ColoringTask
from repro.coloring.runner import make_channel
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, MessageFaults, NodeOutage
from repro.graphs.udg import UnitDiskGraph
from repro.invariants import (
    IndependenceAuditor,
    independence_violations,
    palette_violations,
)
from repro.simulation.scheduler import WakeupSchedule
from repro.simulation.simulator import SlotSimulator

from .conftest import CORPUS_SEEDS, PARAMS, corpus_deployment

ALGORITHMS = algorithm_names()
PROTOCOLS = tuple(
    entry.name for entry in all_algorithms() if entry.model == "sinr-protocol"
)
IMMUNE = tuple(
    entry.name for entry in all_algorithms() if entry.model != "sinr-protocol"
)
FAULT_SEEDS = CORPUS_SEEDS[:6]


def crash_plan() -> FaultPlan:
    """Two radios lost at slot 0, never restarting (PR-5 crash regime)."""
    return FaultPlan(
        outages=[NodeOutage(node=node, start=0, stop=None) for node in (0, 7)]
    )


def sleep_plan() -> FaultPlan:
    """Three sleepers over a long mid-run window, then restart."""
    return FaultPlan(
        outages=[
            NodeOutage(node=node, start=50, stop=900) for node in (3, 11, 15)
        ]
    )


def loss_plan() -> FaultPlan:
    """Moderate message loss (drops and corruption)."""
    return FaultPlan(messages=MessageFaults(drop=0.2, corrupt=0.05))


def survivor_violations(outcome, down_nodes):
    """Independence violations among nodes whose radio never failed."""
    masked = outcome.colors.copy()
    for node in down_nodes:
        masked[node] = -1
    graph = outcome.graph
    return independence_violations(graph.positions, graph.radius, masked)


class TestRegistryDiscovery:
    def test_zoo_is_populated(self):
        # The corpus must not pass vacuously: the reference entry plus
        # both competitors and both baselines are all registered.
        assert set(ALGORITHMS) >= {
            "mw", "fuchs_prutkin", "kuhn_multicolor", "greedy", "luby",
        }
        assert "mw" in PROTOCOLS and "fuchs_prutkin" in PROTOCOLS
        assert set(IMMUNE) >= {"kuhn_multicolor", "greedy", "luby"}

    def test_names_are_sorted_and_models_declared(self):
        assert list(ALGORITHMS) == sorted(ALGORITHMS)
        for entry in all_algorithms():
            assert entry.model in MODELS
            assert entry.describe() == {
                "algorithm": entry.name, "model": entry.model,
            }

    def test_unknown_name_names_the_registry(self):
        with pytest.raises(ConfigurationError, match="fuchs_prutkin"):
            get_algorithm("no-such-coloring")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_algorithm
            class Shadow(ColoringAlgorithm):
                name = "mw"

                def palette_bound(self, delta):
                    return delta + 1

                def run(self, task):
                    raise NotImplementedError

        assert type(get_algorithm("mw")).__name__ == "MWColoring"

    def test_nameless_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):

            @register_algorithm
            class Anonymous(ColoringAlgorithm):
                def palette_bound(self, delta):
                    return delta + 1

                def run(self, task):
                    raise NotImplementedError

    def test_palette_bounds_scale_with_delta(self):
        for entry in all_algorithms():
            assert entry.palette_bound(1) >= 1
            assert entry.palette_bound(8) >= entry.palette_bound(1)


class TestFaultFreeConformance:
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_invariants_on_the_shared_corpus(self, algorithm, seed, arena_run):
        outcome = arena_run(algorithm, seed)
        assert outcome.algorithm == algorithm
        assert outcome.completed, f"{algorithm} did not complete on seed {seed}"
        assert outcome.decided == outcome.n
        graph = outcome.graph
        assert not independence_violations(
            graph.positions, graph.radius, outcome.colors
        )
        decided = outcome.colors[outcome.colors >= 0]
        assert palette_violations(decided, outcome.palette_bound) == []
        assert outcome.clean
        # The run-exact bound never exceeds the a-priori promise.
        entry = get_algorithm(algorithm)
        assert outcome.palette_bound <= entry.palette_bound(
            max(1, graph.max_degree)
        )

    @pytest.mark.parametrize("algorithm", PROTOCOLS)
    def test_live_audit_attached_for_protocol_entries(self, algorithm, arena_run):
        outcome = arena_run(algorithm, CORPUS_SEEDS[0])
        assert outcome.audit_violations == ()
        assert outcome.stats is not None and outcome.stats.completed

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_schedule_reaches_the_mac_verify_path(self, algorithm, arena_run):
        outcome = arena_run(algorithm, CORPUS_SEEDS[1])
        schedule = outcome.schedule()
        assert schedule.frame_length == outcome.num_colors


class TestConformanceUnderFaults:
    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    @pytest.mark.parametrize("algorithm", PROTOCOLS)
    @pytest.mark.parametrize(
        "plan_factory,down_nodes",
        [(crash_plan, (0, 7)), (sleep_plan, (3, 11, 15))],
        ids=["crash", "sleep"],
    )
    def test_survivors_keep_independence(
        self, algorithm, seed, plan_factory, down_nodes
    ):
        outcome = run_coloring_algorithm(
            algorithm, corpus_deployment(seed), PARAMS,
            seed=seed, faults=plan_factory(),
        )
        # Whatever a downed node did to itself, every live-audit
        # violation involves at least one node that lost its radio.
        assert outcome.audit_violations is not None
        for violation in outcome.audit_violations:
            assert set(violation.pair) & set(down_nodes), (
                f"{algorithm}: fault-free nodes violated Theorem 1: "
                f"{violation}"
            )
        assert survivor_violations(outcome, down_nodes) == []
        assert outcome.fault_events is not None

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    @pytest.mark.parametrize("algorithm", PROTOCOLS)
    def test_moderate_loss_never_breaks_independence(self, algorithm, seed):
        outcome = run_coloring_algorithm(
            algorithm, corpus_deployment(seed), PARAMS,
            seed=seed, faults=loss_plan(),
        )
        assert outcome.audit_violations == ()
        assert outcome.completed and outcome.is_proper()
        events = outcome.fault_events
        assert events is not None and events["dropped"] > 0

    @pytest.mark.parametrize("algorithm", IMMUNE)
    def test_non_protocol_entries_are_fault_immune(self, algorithm, arena_run):
        seed = FAULT_SEEDS[0]
        baseline = arena_run(algorithm, seed)
        faulted = run_coloring_algorithm(
            algorithm, corpus_deployment(seed), PARAMS,
            seed=seed, faults=crash_plan(),
        )
        assert np.array_equal(baseline.colors, faulted.colors)
        assert faulted.extras.get("fault_immune") is True


class TestDualEngineConformance:
    """``build_nodes`` machines under the per-slot engine (same invariants)."""

    @staticmethod
    def _run_slot_engine(algorithm: str, seed: int):
        entry = get_algorithm(algorithm)
        deployment = corpus_deployment(seed)
        graph = UnitDiskGraph(deployment.positions, PARAMS.r_t)
        auditor = IndependenceAuditor(
            positions=graph.positions, radius=graph.radius
        )
        ctx = ProtocolContext(
            graph=graph, params=PARAMS, seed=seed,
            decision_listeners=(auditor.on_decision,),
        )
        processes = [EventNodeProcess(m) for m in entry.build_nodes(ctx)]
        simulator = SlotSimulator(
            make_channel("sinr", graph.positions, PARAMS),
            processes,
            WakeupSchedule.synchronous(graph.n),
            seed=seed,
        )
        stats = simulator.run(entry.slot_budget(ctx))
        colors = np.asarray(
            [
                p.machine.color if p.machine.color is not None else -1
                for p in processes
            ],
            dtype=np.int64,
        )
        return graph, stats, colors, auditor

    @pytest.mark.parametrize("seed", CORPUS_SEEDS[:3])
    @pytest.mark.parametrize("algorithm", PROTOCOLS)
    def test_slot_engine_satisfies_the_same_invariants(self, algorithm, seed):
        graph, stats, colors, auditor = self._run_slot_engine(algorithm, seed)
        assert stats.completed
        assert (colors >= 0).all()
        assert not independence_violations(
            graph.positions, graph.radius, colors
        )
        assert auditor.clean
        bound = get_algorithm(algorithm).palette_bound(
            max(1, graph.max_degree)
        )
        assert palette_violations(colors, bound) == []

    @pytest.mark.parametrize("algorithm", IMMUNE)
    def test_non_protocol_entries_decline_build_nodes(self, algorithm):
        deployment = corpus_deployment(0)
        graph = UnitDiskGraph(deployment.positions, PARAMS.r_t)
        ctx = ProtocolContext(graph=graph, params=PARAMS, seed=0)
        entry = get_algorithm(algorithm)
        with pytest.raises(ConfigurationError, match="state machine"):
            entry.build_nodes(ctx)
        with pytest.raises(ConfigurationError, match="slot budget"):
            entry.slot_budget(ctx)


class TestTaskSurface:
    def test_empty_deployment_rejected(self):
        task = ColoringTask(deployment=np.zeros((0, 2)))
        with pytest.raises(ConfigurationError, match="empty"):
            task.graph()

    def test_default_params_normalise_to_unit_range(self):
        task = ColoringTask(deployment=np.zeros((1, 2)))
        assert task.resolved_params().r_t == 1.0
