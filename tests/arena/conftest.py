"""The shared arena corpus: one deployment set for every competitor.

Conformance and determinism tests all draw from the same 60-seed corpus
of small deployments (n = 20, extent 3.0 — second-scale protocol runs,
the density envelope the practical preset's constants are validated
for; see tests/property/test_invariants_under_faults.py),
so every registered algorithm is judged on *identical* inputs.  The
session-scoped ``arena_run`` fixture caches fault-free executions per
``(algorithm, seed)``: the corpus is swept once no matter how many
tests inspect it.
"""

from __future__ import annotations

import pytest

from repro.algorithms import run_coloring_algorithm
from repro.geometry.deployment import uniform_deployment
from repro.sinr.params import PhysicalParams

CORPUS_SEEDS = tuple(range(60))
CORPUS_N = 20
CORPUS_EXTENT = 3.0
PARAMS = PhysicalParams().with_r_t(1.0)


def corpus_deployment(seed: int, n: int = CORPUS_N, extent: float = CORPUS_EXTENT):
    """The corpus deployment for one seed (identical across algorithms)."""
    return uniform_deployment(n, extent, seed=seed)


@pytest.fixture(scope="session")
def arena_run():
    """Cached fault-free corpus runs — one execution per (algorithm, seed)."""
    cache: dict[tuple[str, int], object] = {}

    def run(algorithm: str, seed: int):
        key = (algorithm, seed)
        if key not in cache:
            cache[key] = run_coloring_algorithm(
                algorithm, corpus_deployment(seed), PARAMS, seed=seed
            )
        return cache[key]

    return run
