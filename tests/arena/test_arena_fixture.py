"""The arena's head-to-head table is locked as a committed fixture.

``fixtures/exp14_rows.json`` holds EXP-14's full default sweep
(every registered algorithm x seeds 0-1) captured when the arena was
introduced — the pattern of tests/integration/test_fault_plan_parity.py.
Any drift in a competitor's palette, convergence count or TDMA delivery
rate under the default deployment is a *visible* diff here, not a
silent re-baseline; an intentional algorithm change regenerates the
fixture in the same commit.
"""

from __future__ import annotations

import json
import pathlib

from repro.algorithms import algorithm_names
from repro.experiments import exp14_arena as exp14

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _fixture_rows() -> list[dict]:
    return json.loads(
        (FIXTURES / "exp14_rows.json").read_text(encoding="utf-8")
    )


def _canonical(rows: list[dict]) -> str:
    return json.dumps(rows, sort_keys=True, default=str)


class TestArenaRowLock:
    def test_default_sweep_bit_identical_to_fixture(self):
        rows = exp14.run(seeds=(0, 1))
        assert _canonical(rows) == _canonical(_fixture_rows())
        exp14.check(rows)

    def test_fixture_covers_the_whole_registry(self):
        # A newly registered algorithm must be re-baselined into the
        # fixture (the default sweep includes it automatically).
        fixture_algorithms = {row["algorithm"] for row in _fixture_rows()}
        assert fixture_algorithms == set(algorithm_names())

    def test_fixture_rows_carry_every_arena_column(self):
        for row in _fixture_rows():
            assert set(exp14.COLUMNS) == set(row)


class TestHeadlineComparisons:
    """The fixture's numbers tell the paper's story; pin the ranking."""

    def test_fp_palette_is_delta_plus_one(self):
        for row in _fixture_rows():
            if row["algorithm"] == "fuchs_prutkin":
                assert row["palette_bound"] == row["delta"] + 1
                assert row["max_color"] <= row["delta"]

    def test_mw_spends_more_colors_than_greedy(self):
        rows = _fixture_rows()
        greedy = {r["seed"]: r["colors"] for r in rows if r["algorithm"] == "greedy"}
        for row in rows:
            if row["algorithm"] == "mw":
                assert row["colors"] >= greedy[row["seed"]]

    def test_every_tdma_frame_delivers(self):
        for row in _fixture_rows():
            assert 0.0 < row["delivery_rate"] <= 1.0
            assert row["frame_slots"] >= row["colors"]
