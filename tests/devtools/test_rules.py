"""One test per rule code, driven by deliberately-broken fixture files.

Each test lints its fixture with ``select`` narrowed to the rule under
test, so a fixture may violate several rules without cross-talk (the
fixtures deliberately omit things like the future-annotations import
only where that *is* the violation under test).
"""

from __future__ import annotations

import pathlib

from repro.devtools import lint_paths

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def codes_in(fixture: str, code: str) -> list[str]:
    """The ``code`` findings (by code) that linting ``fixture`` produces."""
    report = lint_paths([FIXTURES / fixture], root=FIXTURES, select=[code])
    return [finding.code for finding in report.findings]


def lines_in(fixture: str, code: str) -> list[int]:
    report = lint_paths([FIXTURES / fixture], root=FIXTURES, select=[code])
    return [finding.line for finding in report.findings]


class TestRngRules:
    def test_rng001_flags_both_import_forms(self):
        assert codes_in("rng_stdlib.py", "RNG001") == ["RNG001", "RNG001"]

    def test_rng002_flags_global_call_and_from_import(self):
        assert codes_in("rng_global.py", "RNG002") == ["RNG002", "RNG002"]

    def test_rng002_does_not_flag_constructors(self):
        # default_rng/SeedSequence are RNG003's business, not RNG002's
        assert codes_in("rng_construct.py", "RNG002") == []

    def test_rng003_flags_construction_outside_sanctioned_site(self):
        assert codes_in("rng_construct.py", "RNG003") == ["RNG003", "RNG003"]

    def test_rng003_exempts_simulation_rng_py(self):
        assert codes_in("simulation/rng.py", "RNG003") == []


class TestDeterminismRules:
    def test_det001_flags_module_and_from_import_clocks(self):
        assert codes_in("det_clock.py", "DET001") == ["DET001", "DET001"]

    def test_det001_exempts_telemetry(self):
        assert codes_in("telemetry/clock_ok.py", "DET001") == []

    def test_det002_flags_set_iteration_in_seed_pure_packages(self):
        assert codes_in("coloring/det_set.py", "DET002") == ["DET002", "DET002"]

    def test_det002_ignores_other_packages(self):
        assert codes_in("det_set_elsewhere.py", "DET002") == []

    def test_det003_flags_popitem(self):
        assert codes_in("det_popitem.py", "DET003") == ["DET003"]

    def test_det004_flags_environ_and_getenv(self):
        assert codes_in("det_environ.py", "DET004") == ["DET004", "DET004"]

    def test_det001_det004_exempt_service_boundary(self):
        # service/ is a documented process-boundary exemption: wall-clock
        # job timestamps and environment-read configuration are allowed
        # without noqas (docs/STATIC_ANALYSIS.md)
        assert codes_in("service/clock_ok.py", "DET001") == []
        assert codes_in("service/clock_ok.py", "DET004") == []

    def test_service_exemption_does_not_cover_other_det_rules(self):
        # the boundary exemption is scoped: DET003 still fires in service/
        assert codes_in("service/det_popitem.py", "DET003") == ["DET003"]


class TestContractRules:
    def test_exp001_reports_each_missing_export(self):
        report = lint_paths(
            [FIXTURES / "experiments" / "exp99_missing.py"],
            root=FIXTURES,
            select=["EXP001"],
        )
        missing = {f.message.split("`")[1] for f in report.findings}
        assert missing == {"GRID", "COLUMNS", "units", "run", "check"}

    def test_exp002_flags_hand_rolled_run(self):
        assert codes_in("experiments/exp98_drift.py", "EXP002") == ["EXP002"]

    def test_exp003_flags_signature_drift(self):
        report = lint_paths(
            [FIXTURES / "experiments" / "exp98_drift.py"],
            root=FIXTURES,
            select=["EXP003"],
        )
        assert [f.code for f in report.findings] == ["EXP003"]
        assert "extra" in report.findings[0].message

    def test_contract_rules_ignore_non_experiment_files(self):
        for code in ("EXP001", "EXP002", "EXP003"):
            assert codes_in("clean_module.py", code) == []


class TestTelemetryRule:
    def test_tel001_flags_schema_literal_only(self):
        # the "almost a schema" string must not match
        assert lines_in("tel_schema.py", "TEL001") == [5]


class TestFaultBoundaryRule:
    def test_flt001_flags_wrapper_but_not_leaf_channel(self):
        # HalvingChannel._resolve delegates to inner.resolve (flagged);
        # PlainChannel._resolve computes deliveries itself (clean).
        assert codes_in("sinr/flt_wrapper.py", "FLT001") == ["FLT001"]

    def test_flt001_exempts_the_faults_package(self):
        assert codes_in("faults/flt_home.py", "FLT001") == []

    def test_flt001_ignores_packages_outside_the_protocol_core(self):
        assert codes_in("clean_module.py", "FLT001") == []


class TestErrorRules:
    def test_err001_flags_bare_except(self):
        assert codes_in("err_swallow.py", "ERR001") == ["ERR001"]

    def test_err002_flags_swallowed_broad_except_including_tuples(self):
        assert codes_in("err_swallow.py", "ERR002") == ["ERR002", "ERR002"]


class TestStyleRule:
    def test_fut001_flags_missing_future_import(self):
        assert codes_in("fut_missing.py", "FUT001") == ["FUT001"]

    def test_fut001_accepts_clean_module(self):
        assert codes_in("clean_module.py", "FUT001") == []


class TestBatchRules:
    def test_bat001_flags_stream_construction_outside_planner(self):
        assert codes_in("batch/bat_engine.py", "BAT001") == [
            "BAT001",
            "BAT001",
            "BAT001",
        ]

    def test_bat001_exempts_the_planner(self):
        assert codes_in("batch/planner.py", "BAT001") == []

    def test_bat001_ignores_files_outside_batch(self):
        assert codes_in("rng_construct.py", "BAT001") == []

    def test_bat001_is_clean_on_the_real_subsystem(self):
        import repro.batch

        batch_dir = pathlib.Path(repro.batch.__file__).parent
        report = lint_paths(
            [batch_dir], root=batch_dir.parent.parent, select=["BAT001"]
        )
        assert [finding.code for finding in report.findings] == []


class TestAlgorithmRules:
    def test_alg001_flags_the_unregistered_entry_only(self):
        assert codes_in("algorithms/alg_broken.py", "ALG001") == ["ALG001"]

    def test_alg002_flags_missing_and_computed_names(self):
        assert codes_in("algorithms/alg_broken.py", "ALG002") == [
            "ALG002",
            "ALG002",
        ]

    def test_clean_entry_passes_both(self):
        assert codes_in("algorithms/alg_ok.py", "ALG001") == []
        assert codes_in("algorithms/alg_ok.py", "ALG002") == []

    def test_rules_ignore_files_outside_the_zoo(self):
        assert codes_in("clean_module.py", "ALG001") == []

    def test_rules_are_clean_on_the_real_zoo(self):
        import repro.algorithms

        zoo_dir = pathlib.Path(repro.algorithms.__file__).parent
        report = lint_paths(
            [zoo_dir],
            root=zoo_dir.parent.parent,
            select=["ALG001", "ALG002"],
        )
        assert [finding.code for finding in report.findings] == []
