"""CLI tests: exit codes, JSON output, suppression, the repro front end."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.devtools.cli import main
from repro.devtools.findings import Finding

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_exit_zero_on_clean_file(capsys):
    assert main([str(FIXTURES / "clean_module.py")]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s) in 1 file(s)" in out


def test_exit_one_on_findings(capsys):
    assert main([str(FIXTURES / "det_popitem.py")]) == 1
    out = capsys.readouterr().out
    assert "DET003" in out
    assert "det_popitem.py" in out


def test_noqa_honoured_and_reported(capsys):
    assert main([str(FIXTURES / "noqa_ok.py")]) == 0
    out = capsys.readouterr().out
    assert "(2 suppressed)" in out


def test_json_output_round_trips(capsys):
    code = main(["--format", "json", str(FIXTURES / "det_popitem.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 1
    findings = [Finding.from_json(item) for item in payload["findings"]]
    assert [f.code for f in findings] == ["DET003"]
    assert findings[0].line > 0 and findings[0].col > 0


def test_select_and_ignore(capsys):
    # err_swallow.py violates ERR001 and ERR002; selecting one hides the other
    assert main(["--select", "ERR001", str(FIXTURES / "err_swallow.py")]) == 1
    assert "ERR002" not in capsys.readouterr().out
    assert main(["--ignore", "ERR001,ERR002", str(FIXTURES / "err_swallow.py")]) == 0
    capsys.readouterr()


def test_unknown_rule_code_is_usage_error(capsys):
    assert main(["--select", "NOPE99", str(FIXTURES / "clean_module.py")]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "does_not_exist")]) == 2
    assert "does_not_exist" in capsys.readouterr().err


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RNG001", "DET001", "EXP001", "TEL001", "ERR001", "FUT001"):
        assert code in out


def test_syntax_error_file_reports_lnt001(capsys):
    assert main([str(FIXTURES / "broken_syntax.py")]) == 1
    assert "LNT001" in capsys.readouterr().out


def test_repro_cli_front_end(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(FIXTURES / "clean_module.py")]) == 0
    capsys.readouterr()
    assert repro_main(["lint", str(FIXTURES / "det_popitem.py")]) == 1
    assert "DET003" in capsys.readouterr().out


@pytest.mark.parametrize("flag", ["--select", "--ignore"])
def test_code_lists_tolerate_spaces(flag, capsys):
    assert main([flag, " DET003 , ERR001 ", str(FIXTURES / "clean_module.py")]) == 0
    capsys.readouterr()
