"""GRID really describes the default sweep: axes match units() output.

``GRID`` is the machine-readable sweep declaration EXP001 requires every
experiment to export.  These tests pin it to the ground truth — the
kwargs the module's default ``units()`` actually enumerates — so the two
cannot drift apart silently.
"""

from __future__ import annotations

import pytest

from repro.experiments import REGISTRY


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_grid_axes_match_default_units(name):
    module = REGISTRY[name]
    grid = module.GRID
    assert isinstance(grid, dict)
    units = module.units()
    assert units, f"{name}: units() returned no work"
    for axis, declared in grid.items():
        seen = {
            unit["kwargs"][axis]
            for unit in units
            if axis in unit["kwargs"]
        }
        assert seen == set(declared), (
            f"{name}: GRID[{axis!r}] declares {sorted(map(repr, declared))} "
            f"but default units() sweep {sorted(map(repr, seen))}"
        )


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_grid_never_declares_the_seed_axis(name):
    # seeds are orchestrated separately (units(seeds=...)); a GRID that
    # declares them would double-sweep
    grid = REGISTRY[name].GRID
    assert "seed" not in grid and "seeds" not in grid
