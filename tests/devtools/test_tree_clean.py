"""The gate holds on the shipped tree: zero findings on src/tools/benchmarks.

This is the same invocation CI runs (``repro lint src tools benchmarks``)
as a library call, so a change that introduces a violation fails the test
suite locally before it ever reaches CI.
"""

from __future__ import annotations

import pathlib

from repro.devtools import lint_paths

REPO_ROOT = pathlib.Path(__file__).parents[2]
GATE_PATHS = [REPO_ROOT / name for name in ("src", "tools", "benchmarks")]


def test_shipped_tree_is_lint_clean():
    report = lint_paths(GATE_PATHS, root=REPO_ROOT)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"lint gate violations:\n{rendered}"
    assert report.files > 100  # the gate really walked the tree


def test_suppressions_are_bounded():
    # Every suppression is a justified exception; a jump in this number
    # means noqa is being used as an escape hatch. Update deliberately.
    report = lint_paths(GATE_PATHS, root=REPO_ROOT)
    assert report.suppressed <= 25, (
        f"{report.suppressed} suppressions — audit new noqa comments "
        "before raising this bound"
    )
