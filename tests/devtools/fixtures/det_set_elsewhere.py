"""DET002 exemption fixture: set iteration outside the seed-pure packages."""

from __future__ import annotations


def traverse(items: list[int]) -> list[int]:
    return [v for v in set(items)]
