"""Suppression fixture: violations carrying justified noqa comments."""

from __future__ import annotations

import random  # repro: noqa[RNG001] fixture: suppression must be honoured


def evict(cache: dict) -> object:
    return cache.popitem()  # repro: noqa[DET003, RNG001] multi-code form
