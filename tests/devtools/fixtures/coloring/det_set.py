"""DET002 fixture: bare-set iteration in a seed-pure package."""

from __future__ import annotations


def traverse(items: list[int]) -> list[int]:
    out = []
    for value in {1, 2, 3}:
        out.append(value)
    return out + [v for v in set(items)]
