"""Fixture error hierarchy (mirrors repro.errors in miniature)."""


class ConfigurationError(Exception):
    pass


class ServiceError(Exception):
    pass
