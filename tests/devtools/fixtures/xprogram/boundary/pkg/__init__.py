"""Boundary exception-flow fixture package."""
