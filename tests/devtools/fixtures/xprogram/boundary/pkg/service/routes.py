"""Deliberate defect: a route handler leaks KeyError (ERR003).

``handle_ok`` raises ServiceError, which the route contract allows.
"""

from ..errors import ServiceError


def handle_jobs(request):
    return request["job_id"].upper()


def handle_lookup(request):
    if "job_id" not in request:
        raise KeyError("job_id")
    return request["job_id"]


def handle_ok(request):
    raise ServiceError("not found")


ROUTES = {
    "/jobs": handle_lookup,
    "/ok": handle_ok,
}
