"""Fixture service package."""
