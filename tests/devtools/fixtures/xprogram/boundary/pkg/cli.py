"""Deliberate defect: a helper two hops down leaks ValueError (ERR003).

``_cmd_ok`` shows the sanctioned pattern: it translates the domain
failure into ConfigurationError, the only type the CLI contract allows.
"""

import argparse

from .errors import ConfigurationError


def helper(n):
    if n < 0:
        raise ValueError("negative")
    return n


def _cmd_run(args):
    return helper(args.n)


def _cmd_ok(args):
    try:
        return helper(args.n)
    except ValueError as failure:
        raise ConfigurationError(str(failure)) from failure


def main():
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers()
    run = sub.add_parser("run")
    run.set_defaults(func=_cmd_run)
    ok = sub.add_parser("ok")
    ok.set_defaults(func=_cmd_ok)
    args = parser.parse_args()
    return args.func(args)
