"""Deliberate defects: one per lock-discipline code.

* ``_jobs``  — guarded in ``clear()`` but read bare elsewhere (CCY002).
* ``_flag``  — written bare on the main side, read on the thread (CCY001).
* ``_log``   — mutated bare on the thread, read on the main side (CCY003).
"""

import threading


class Manager:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}
        self._flag = False
        self._log = []
        self._thread = threading.Thread(target=self._run)
        self._thread.start()

    def clear(self):
        with self._lock:
            self._jobs = {}

    def peek(self, key):
        return self._jobs.get(key)

    def submit(self, key):
        self._flag = True
        return key

    def entries(self):
        return list(self._log)

    def _run(self):
        for key in self._jobs:
            self._log.append(key)
        if self._flag:
            return
