"""CCY fixture package: a thread-spawning class with bad lock discipline."""
