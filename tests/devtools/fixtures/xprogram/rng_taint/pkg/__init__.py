"""RNG taint fixture package."""
