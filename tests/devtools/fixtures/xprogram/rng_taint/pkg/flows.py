"""Deliberate defects: generator streams escaping the explicit dataflow.

* ``GENERATOR``  — a module-level generator (RNG004).
* ``_shared``    — a ``global`` write of a generator that travelled
  through ``make_rng()``, exercising the interprocedural summary
  (second RNG004 with a multi-hop path).
* ``sampler``    — a closure capturing a local generator (RNG005).
* ``ALLOWED``    — the same module-level defect under a justified noqa,
  exercising suppression.
"""


def rng_from_seed(seed):
    return object()  # stand-in for numpy's Generator in a parse-only tree


GENERATOR = rng_from_seed(123)

ALLOWED = rng_from_seed(7)  # repro: noqa[RNG004] fixture exercises suppression

_shared = None


def make_rng(seed):
    rng = rng_from_seed(seed)
    return rng


def install(seed):
    global _shared
    _shared = make_rng(seed)


def make_sampler(seed):
    rng = rng_from_seed(seed)

    def sampler():
        return rng.random()

    return sampler
