"""API drift fixture: ``orphan_export`` is public but dead (API002)."""

__all__ = ["kept", "orphan_export"]


def kept(x):
    return x


def orphan_export():
    return 2
