"""DET001 exemption fixture: telemetry/ may read the clock."""

from __future__ import annotations

import time


def stamp() -> float:
    return time.perf_counter()
