"""RNG003 exemption fixture: the one sanctioned construction site."""

from __future__ import annotations

import numpy as np


def rng_from_seed(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
