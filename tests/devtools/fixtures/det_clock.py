"""DET001 fixture: wall-clock reads outside telemetry/benchmarks/tools."""

from __future__ import annotations

import time
from time import perf_counter


def stamp() -> float:
    began = perf_counter()
    return time.time() - began
