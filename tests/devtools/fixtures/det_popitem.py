"""DET003 fixture: dict.popitem."""

from __future__ import annotations


def evict(cache: dict) -> object:
    return cache.popitem()
