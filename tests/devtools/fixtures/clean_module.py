"""Clean fixture: violates nothing; the CLI must exit 0 on it."""

from __future__ import annotations


def double(value: int) -> int:
    return 2 * value
