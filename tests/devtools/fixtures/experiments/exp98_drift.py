"""EXP002/EXP003 fixture: full exports, but run() hand-rolls the sweep
with a signature that drifted from units()."""

from __future__ import annotations

TITLE = "EXP-98: deliberately drifted"
COLUMNS = ["seed", "value"]
GRID: dict = {}


def units(seeds=(0, 1)) -> list[dict]:
    return [{"func": "run_single", "kwargs": {"seed": seed}} for seed in seeds]


def run_single(seed: int) -> dict:
    return {"seed": seed, "value": seed * 2}


def run(seeds=(0, 1), extra: int = 0) -> list[dict]:
    return [run_single(seed + extra) for seed in seeds]


def check(rows) -> None:
    assert rows
