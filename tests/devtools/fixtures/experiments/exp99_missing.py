"""EXP001 fixture: experiment module missing most of the contract."""

from __future__ import annotations

TITLE = "EXP-99: deliberately incomplete"
