"""RNG003 fixture: ad-hoc generator construction outside simulation/rng.py."""

from __future__ import annotations

import numpy as np


def build() -> object:
    sequence = np.random.SeedSequence(7)
    return np.random.default_rng(sequence)
