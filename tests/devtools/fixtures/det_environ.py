"""DET004 fixture: environment reads outside the CLI boundary."""

from __future__ import annotations

import os


def configure() -> tuple[str | None, str]:
    return os.getenv("REPRO_JOBS"), os.environ["HOME"]
