"""FLT001 fixture: an ad-hoc fault wrapper inside a protocol package."""

from __future__ import annotations


class HalvingChannel:
    """Drops every other delivery — fault behaviour outside repro.faults."""

    def __init__(self, inner):
        self._inner = inner

    def _resolve(self, transmissions):
        deliveries = self._inner.resolve(transmissions)
        return deliveries[::2]


class PlainChannel:
    """A leaf channel computing its own deliveries — not a wrapper."""

    def _resolve(self, transmissions):
        return [self._deliver(t) for t in transmissions]

    def _deliver(self, transmission):
        return transmission
