"""Fixture: the planner is the sanctioned stream construction site."""

from __future__ import annotations

from repro.simulation.rng import spawn_generators


def derive_streams(seeds, n):
    return [spawn_generators(int(seed), n) for seed in seeds]
