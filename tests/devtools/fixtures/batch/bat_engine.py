"""Fixture: generator construction inside batch/ outside the planner."""

from __future__ import annotations

import numpy as np

from repro.simulation.rng import rng_from_seed, spawn_generators


def hot_loop(seeds):
    streams = [spawn_generators(seed, 8) for seed in seeds]  # BAT001
    extra = rng_from_seed(0)  # BAT001
    ad_hoc = np.random.default_rng(1)  # BAT001 (and RNG003)
    return streams, extra, ad_hoc
