"""LNT001 fixture: deliberately unparseable."""

def broken(:
    return
