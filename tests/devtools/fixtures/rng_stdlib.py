"""RNG001 fixture: stdlib random imports."""

from __future__ import annotations

import random
from random import shuffle


def draw() -> float:
    shuffle([])
    return random.random()
