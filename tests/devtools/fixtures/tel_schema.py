"""TEL001 fixture: a schema literal duplicated outside repro/schemas.py."""

from __future__ import annotations

SCHEMA = "repro.telemetry/1"
NOT_A_SCHEMA = "repro.telemetry/1 with trailing words"
