"""Clean counterpart: a registered entry with a literal name."""

from __future__ import annotations

from repro.algorithms.base import ColoringAlgorithm, ColoringRunResult, ColoringTask
from repro.algorithms.registry import register_algorithm


@register_algorithm
class WellBehaved(ColoringAlgorithm):
    name = "well_behaved"
    model = "centralised"

    def palette_bound(self, delta: int) -> int:
        return delta + 1

    def run(self, task: ColoringTask) -> ColoringRunResult:
        raise NotImplementedError


class NotAnEntry:
    """No ColoringAlgorithm base — outside the rules' scope."""

    name = ""
