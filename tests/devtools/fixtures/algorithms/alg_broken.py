"""ALG001/ALG002 fixture: zoo entries that dodge the registry."""

from __future__ import annotations

from repro.algorithms.base import ColoringAlgorithm, ColoringRunResult, ColoringTask
from repro.algorithms.registry import register_algorithm


class Rogue(ColoringAlgorithm):  # ALG001: never registered
    name = "rogue"

    def palette_bound(self, delta: int) -> int:
        return delta + 1

    def run(self, task: ColoringTask) -> ColoringRunResult:
        raise NotImplementedError


@register_algorithm
class Anonymous(ColoringAlgorithm):  # ALG002: no class-level name
    def palette_bound(self, delta: int) -> int:
        return delta + 1

    def run(self, task: ColoringTask) -> ColoringRunResult:
        raise NotImplementedError


@register_algorithm
class Computed(ColoringAlgorithm):
    name = "".join(["dyn", "amic"])  # ALG002: not a string literal

    def palette_bound(self, delta: int) -> int:
        return delta + 1

    def run(self, task: ColoringTask) -> ColoringRunResult:
        raise NotImplementedError
