"""RNG002 fixture: global-state numpy RNG use."""

from __future__ import annotations

import numpy as np
from numpy.random import randint


def draw() -> object:
    randint(3)
    return np.random.normal(size=4)
