"""ERR001/ERR002 fixture: bare and silently swallowed excepts."""

from __future__ import annotations


def risky(fn) -> object | None:
    try:
        return fn()
    except:  # ERR001
        pass


def swallow(fn) -> None:
    try:
        fn()
    except Exception:  # ERR002
        pass
    try:
        fn()
    except (ValueError, BaseException):  # ERR002 (tuple form)
        ...
    try:
        fn()
    except ValueError:  # narrow: allowed
        pass
    try:
        fn()
    except Exception as failure:  # broad but recorded: allowed
        print(failure)
