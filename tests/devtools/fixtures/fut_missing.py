"""FUT001 fixture: module body without the future-annotations import."""

VALUE = 1
