"""FLT001 exemption fixture: the sanctioned wrapper site is faults/."""

from __future__ import annotations


class SanctionedWrapper:
    """Inside faults/ the delegate-and-mutate idiom is the design."""

    def __init__(self, inner):
        self._inner = inner

    def _resolve(self, transmissions):
        deliveries = self._inner.resolve(transmissions)
        return [d for d in deliveries if d is not None]
