"""Reject fixture: the service/ exemption covers DET001/DET004 only.

Every other determinism hazard — here DET003's popitem — still fires
inside service/ files.
"""

from __future__ import annotations


def evict_job(jobs: dict) -> object:
    return jobs.popitem()
