"""DET001/DET004 exemption fixture: service/ is a process boundary.

Job timestamps are operational provenance for API clients and a server
reads deployment configuration from its environment — both documented
boundary exemptions (docs/STATIC_ANALYSIS.md), not ad-hoc noqas.
"""

from __future__ import annotations

import os
import time


def stamp() -> float:
    return time.time()


def bind_address() -> str:
    return os.environ.get("REPRO_SERVICE_HOST", "127.0.0.1")
