"""Whole-program analyzer tests: fixtures per rule code, CLI flags, gate.

Each deliberate-defect fixture under ``fixtures/xprogram/<case>/`` is a
miniature program tree; a test per rule code asserts the finding fires
there (so deleting a rule fails the suite), and the clean-tree test
mirrors ``test_tree_clean.py`` for the deep pass.
"""

from __future__ import annotations

import json
import pathlib
import subprocess

import pytest

from repro.devtools.cli import main
from repro.devtools.xprogram import all_deep_rules, deep_codes, deep_lint

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "xprogram"
REPO_ROOT = pathlib.Path(__file__).parents[2]


def _codes_at(report, path_suffix=None):
    return [
        f.code
        for f in report.findings
        if path_suffix is None or f.path.endswith(path_suffix)
    ]


# -- one failing fixture per rule code ---------------------------------------


def test_ccy001_unlocked_cross_thread_write():
    report = deep_lint(root=FIXTURES / "ccy")
    hits = [f for f in report.findings if f.code == "CCY001"]
    assert len(hits) == 1
    assert "_flag" in hits[0].message and "submit()" in hits[0].message


def test_ccy002_inconsistent_locking():
    report = deep_lint(root=FIXTURES / "ccy")
    hits = [f for f in report.findings if f.code == "CCY002"]
    # both bare ``_jobs`` sites are flagged against the guarded clear()
    assert {("_jobs" in f.message) for f in hits} == {True}
    assert len(hits) == 2
    assert any("peek()" in f.message for f in hits)
    assert any("_run()" in f.message for f in hits)


def test_ccy003_unlocked_container_mutation():
    report = deep_lint(root=FIXTURES / "ccy")
    hits = [f for f in report.findings if f.code == "CCY003"]
    assert len(hits) == 1
    assert "_log" in hits[0].message and "worker-thread" in hits[0].message


def test_rng004_module_global_with_interprocedural_path():
    report = deep_lint(root=FIXTURES / "rng_taint")
    hits = [f for f in report.findings if f.code == "RNG004"]
    assert len(hits) == 2
    direct = next(f for f in hits if "GENERATOR" in f.message)
    assert "rng_from_seed(...)" in direct.message
    hop = next(f for f in hits if "_shared" in f.message)
    # the propagation path crosses make_rng's return-value summary
    assert "returned by `pkg.flows.make_rng()`" in hop.message


def test_rng005_closure_capture():
    report = deep_lint(root=FIXTURES / "rng_taint")
    hits = [f for f in report.findings if f.code == "RNG005"]
    assert len(hits) == 1
    assert "`rng`" in hits[0].message and "sampler" in hits[0].message


def test_deep_noqa_suppression_honoured():
    report = deep_lint(root=FIXTURES / "rng_taint")
    assert report.suppressed == 1  # the ALLOWED global carries a noqa
    assert not any("ALLOWED" in f.message for f in report.findings)


def test_err003_cli_boundary_leak():
    report = deep_lint(root=FIXTURES / "boundary")
    hits = [f for f in report.findings if f.path.endswith("cli.py")]
    assert [f.code for f in hits] == ["ERR003"]
    message = hits[0].message
    assert "ValueError" in message and "_cmd_run()" in message
    # the chain walks from the raise site through the helper to the entry
    assert "raise `ValueError`" in message
    assert "through `pkg.cli.helper()`" in message
    # the sanctioned translation in _cmd_ok is not flagged
    assert not any("_cmd_ok" in f.message for f in report.findings)


def test_err003_route_boundary_leak():
    report = deep_lint(root=FIXTURES / "boundary")
    hits = [f for f in report.findings if f.path.endswith("routes.py")]
    assert [f.code for f in hits] == ["ERR003"]
    assert "KeyError" in hits[0].message
    assert "handle_lookup()" in hits[0].message
    # ServiceError is the route contract; handle_ok stays clean
    assert not any("handle_ok" in f.message for f in report.findings)


def test_api001_documented_symbol_deleted():
    report = deep_lint(root=FIXTURES / "api_drift")
    hits = [f for f in report.findings if f.code == "API001"]
    assert [f.path for f in hits] == ["docs/API.md"]
    assert "vanished_function" in hits[0].message


def test_api002_dead_public_export():
    report = deep_lint(root=FIXTURES / "api_drift")
    hits = [f for f in report.findings if f.code == "API002"]
    assert len(hits) == 1
    assert "orphan_export" in hits[0].message
    # the documented-and-defined symbol is not flagged
    assert not any("`kept`" in f.message for f in report.findings)


# -- registry + select/ignore ------------------------------------------------


def test_deep_registry_covers_the_issue_codes():
    assert {
        "CCY001", "CCY002", "CCY003", "RNG004", "RNG005",
        "ERR003", "API001", "API002",
    } <= deep_codes()
    assert len(all_deep_rules()) >= 4


def test_deep_select_and_ignore():
    only_ccy = deep_lint(root=FIXTURES / "ccy", select=["CCY003"])
    assert [f.code for f in only_ccy.findings] == ["CCY003"]
    none = deep_lint(
        root=FIXTURES / "ccy", ignore=["CCY001", "CCY002", "CCY003"]
    )
    assert none.clean


def test_deep_unknown_code_rejected():
    with pytest.raises(ValueError):
        deep_lint(root=FIXTURES / "ccy", select=["NOPE99"])


# -- the gate: the shipped tree is deep-clean --------------------------------


def test_shipped_tree_is_deep_clean():
    report = deep_lint(root=REPO_ROOT)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"deep lint violations:\n{rendered}"
    assert report.files > 100  # the graph really covered the program


def test_committed_deep_baseline_is_empty():
    # CI subtracts this file; an entry appearing here must be a reviewed
    # exception, and the shipped tree holds at zero
    baseline = json.loads(
        (REPO_ROOT / "tools" / "deep_baseline.json").read_text()
    )
    assert baseline["findings"] == []


# -- CLI flags ---------------------------------------------------------------


def test_cli_deep_flag_on_fixture(monkeypatch, capsys):
    monkeypatch.chdir(FIXTURES / "ccy")
    assert main(["--deep", "--select", "CCY001,CCY002,CCY003", "."]) == 1
    out = capsys.readouterr().out
    assert "CCY001" in out and "CCY002" in out and "CCY003" in out


def test_cli_deep_codes_require_deep_flag(capsys):
    assert main(["--select", "CCY001", "."]) == 2
    err = capsys.readouterr().err
    assert "unknown rule code" in err and "--deep" in err


def test_cli_list_rules_includes_deep(capsys):
    assert main(["--deep", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "[whole-program]" in out
    assert "CCY001/CCY002/CCY003" in out
    assert "ERR003" in out


def test_cli_help_documents_exit_codes(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    flat = " ".join(capsys.readouterr().out.split())
    assert "exit codes: 0 = clean" in flat
    assert "2 = usage error" in flat


def test_cli_stats_table(monkeypatch, capsys):
    monkeypatch.chdir(FIXTURES / "rng_taint")
    assert main(["--deep", "--stats", "--select", "RNG004,RNG005", "."]) == 1
    out = capsys.readouterr().out
    assert "rule timings:" in out
    assert "RNG004" in out and "ms" in out


def test_cli_stats_in_json(monkeypatch, capsys):
    monkeypatch.chdir(FIXTURES / "api_drift")
    code = main(
        ["--deep", "--stats", "--format", "json",
         "--select", "API001,API002", "."]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert "API001" in payload["timings"]
    assert {f["code"] for f in payload["findings"]} == {"API001", "API002"}


def test_cli_baseline_subtracts_findings(monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(FIXTURES / "boundary")
    report = deep_lint(root=FIXTURES / "boundary")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(report.to_json()))
    code = main(
        ["--deep", "--select", "ERR003", "--baseline", str(baseline), "."]
    )
    assert code == 0
    assert "2 baselined" in capsys.readouterr().out


def test_cli_baseline_unreadable_is_usage_error(monkeypatch, capsys):
    monkeypatch.chdir(FIXTURES / "boundary")
    assert main(["--deep", "--baseline", "missing.json", "."]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_cli_changed_only_scopes_to_git_diff(monkeypatch, tmp_path, capsys):
    repo = tmp_path / "repo"
    repo.mkdir()
    git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
    subprocess.run(["git", "init", "-q"], cwd=repo, check=True)
    committed = repo / "committed.py"
    committed.write_text("import time\ntime.time()\n")  # DET001, committed
    subprocess.run(git + ["add", "."], cwd=repo, check=True)
    subprocess.run(git + ["commit", "-qm", "seed"], cwd=repo, check=True)
    fresh = repo / "fresh.py"
    fresh.write_text("d = {}\nd.popitem()\n")  # DET003, uncommitted
    monkeypatch.chdir(repo)
    assert main(["--changed-only", "."]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out and "DET003" in out
    assert "committed.py" not in out
    assert "1 file(s)" in out


def test_cli_changed_only_outside_git_is_usage_error(
    monkeypatch, tmp_path, capsys
):
    monkeypatch.chdir(tmp_path)
    assert main(["--changed-only", "."]) == 2
    assert "git" in capsys.readouterr().err
