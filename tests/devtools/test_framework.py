"""Rule-framework tests: registry, context scoping, noqa, pseudo-codes."""

from __future__ import annotations

import ast
import pathlib

import pytest

from repro.devtools import Finding, FileContext, Rule, all_rules, lint_file
from repro.devtools.framework import (
    PARSE_ERROR,
    RULE_ERROR,
    dotted_name,
    iter_python_files,
    rule,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _context(relpath: str, source: str) -> FileContext:
    return FileContext(pathlib.Path(relpath), relpath, source)


class TestFileContext:
    def test_parts_and_name(self):
        ctx = _context("src/repro/coloring/palette.py", "x = 1\n")
        assert ctx.parts == ("src", "repro", "coloring", "palette.py")
        assert ctx.name == "palette.py"

    def test_within_matches_directories_not_filename(self):
        ctx = _context("src/repro/telemetry/jsonl.py", "x = 1\n")
        assert ctx.within("telemetry")
        assert ctx.within("nosuch", "repro")
        assert not ctx.within("jsonl.py")  # the filename is not a directory

    def test_is_file_with_and_without_under(self):
        ctx = _context("src/repro/simulation/rng.py", "x = 1\n")
        assert ctx.is_file("rng.py")
        assert ctx.is_file("rng.py", under="simulation")
        assert not ctx.is_file("rng.py", under="coloring")
        assert not ctx.is_file("other.py")

    def test_parse_error_recorded_not_raised(self):
        ctx = _context("bad.py", "def broken(:\n")
        assert ctx.tree is None
        assert ctx.parse_error is not None
        assert list(ctx.walk()) == []

    def test_suppressed_codes_parsing(self):
        source = (
            "a = 1  # repro: noqa[RNG001]\n"
            "b = 2  # repro: noqa[DET003, RNG001] reason text\n"
            "c = 3  # noqa\n"
        )
        ctx = _context("x.py", source)
        assert ctx.suppressed_codes(1) == {"RNG001"}
        assert ctx.suppressed_codes(2) == {"DET003", "RNG001"}
        assert ctx.suppressed_codes(3) == frozenset()
        assert ctx.suppressed_codes(99) == frozenset()


class TestRegistry:
    def test_all_rules_sorted_and_unique(self):
        rules = all_rules()
        codes = [item.code for item in rules]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        # the shipped catalogue
        assert {
            "RNG001", "RNG002", "RNG003",
            "DET001", "DET002", "DET003", "DET004",
            "EXP001", "EXP002", "EXP003",
            "TEL001", "ERR001", "ERR002", "FUT001",
        } <= set(codes)

    def test_rejects_malformed_code(self):
        with pytest.raises(ValueError, match="ABC123"):
            @rule
            class Bad(Rule):  # pragma: no cover - class body only
                code = "bad"

                def check(self, ctx):
                    return iter(())

    def test_rejects_duplicate_code(self):
        existing = all_rules()[0].code
        with pytest.raises(ValueError, match="duplicate"):
            @rule
            class Clash(Rule):  # pragma: no cover - class body only
                code = existing

                def check(self, ctx):
                    return iter(())


class TestDottedName:
    def test_chains(self):
        assert dotted_name(ast.parse("a.b.c", mode="eval").body) == "a.b.c"
        assert dotted_name(ast.parse("name", mode="eval").body) == "name"
        assert dotted_name(ast.parse("f().x", mode="eval").body) is None


class TestLintFile:
    def test_parse_error_is_lnt001(self):
        findings, suppressed = lint_file(
            FIXTURES / "broken_syntax.py", FIXTURES, rules=[]
        )
        assert [f.code for f in findings] == [PARSE_ERROR]
        assert suppressed == 0

    def test_crashing_rule_is_lnt002_not_fatal(self):
        class Explodes(Rule):
            code = "ZZZ999"
            name = "always crashes"
            rationale = "test double"

            def check(self, ctx):
                raise RuntimeError("boom")
                yield  # pragma: no cover

        findings, _ = lint_file(
            FIXTURES / "clean_module.py", FIXTURES, rules=[Explodes()]
        )
        assert [f.code for f in findings] == [RULE_ERROR]
        assert "ZZZ999" in findings[0].message
        assert "boom" in findings[0].message

    def test_noqa_suppresses_and_is_counted(self):
        findings, suppressed = lint_file(FIXTURES / "noqa_ok.py", FIXTURES)
        assert findings == []
        assert suppressed == 2  # RNG001 on the import, DET003 on popitem


class TestFinding:
    def test_render_and_json_round_trip(self):
        finding = Finding(
            path="src/x.py", line=3, col=5, code="RNG001", message="nope"
        )
        assert finding.render() == "src/x.py:3:5: RNG001 nope"
        assert Finding.from_json(finding.to_json()) == finding

    def test_sort_order_is_path_then_line(self):
        later = Finding(path="b.py", line=1, col=1, code="AAA111", message="m")
        earlier = Finding(path="a.py", line=9, col=1, code="ZZZ999", message="m")
        assert sorted([later, earlier]) == [earlier, later]


class TestIterPythonFiles:
    def test_skips_caches_and_recurses(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "note.txt").write_text("not python\n")
        files = iter_python_files([tmp_path])
        assert files == [tmp_path / "pkg" / "mod.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_python_files([tmp_path / "nope"])
