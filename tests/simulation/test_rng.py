"""Unit tests for the deterministic seed fan-out."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.rng import spawn_generators, spawn_seed_sequences


class TestSpawn:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5
        assert len(spawn_seed_sequences(0, 3)) == 3

    def test_deterministic(self):
        a = spawn_generators(7, 4)
        b = spawn_generators(7, 4)
        for ga, gb in zip(a, b):
            assert ga.random() == gb.random()

    def test_children_independent(self):
        gens = spawn_generators(1, 2)
        assert gens[0].random() != gens[1].random()

    def test_different_root_seeds_differ(self):
        a = spawn_generators(1, 1)[0]
        b = spawn_generators(2, 1)[0]
        assert a.random() != b.random()

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_generators(0, -1)

    def test_prefix_stability(self):
        # the first k children do not depend on how many siblings follow
        few = spawn_generators(9, 3)
        many = spawn_generators(9, 10)
        for gf, gm in zip(few, many):
            assert gf.random() == gm.random()
