"""Determinism regression: same seed, same schedule, same channel —
bit-identical runs.

Every experiment in the reproduction leans on this: the engine rewrite
(vectorised resolution, sender-set caching) must not introduce any
run-to-run divergence.  Two independent executions with identical
configuration must produce the same :class:`RunStats` *and* the same
slot-by-slot transmission and delivery sequences, in the same order.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.node import NodeProcess, SlotApi
from repro.simulation.scheduler import WakeupSchedule
from repro.simulation.simulator import SlotSimulator
from repro.sinr.channel import (
    CollisionFreeChannel,
    GraphChannel,
    ProtocolChannel,
    SINRChannel,
)
from repro.sinr.params import PhysicalParams

PARAMS = PhysicalParams().with_r_t(1.0)


class RandomBeacon(NodeProcess):
    """Transmits its id with probability 0.3 each slot; decides once it has
    heard three distinct neighbors (or after 40 slots of trying)."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.heard: set[int] = set()
        self.slots_seen = 0

    def on_slot(self, api: SlotApi):
        self.slots_seen += 1
        if api.flip(0.3):
            return ("beacon", self.node_id, self.slots_seen)
        return None

    def on_receive(self, api: SlotApi, sender: int, payload) -> None:
        self.heard.add(sender)

    @property
    def decided(self) -> bool:
        return len(self.heard) >= 3 or self.slots_seen >= 40


class SequenceRecorder:
    """Observer capturing the full slot-by-slot event sequence."""

    def __init__(self) -> None:
        self.sequence = []

    def on_slot_end(self, slot, transmissions, deliveries) -> None:
        self.sequence.append((slot, tuple(transmissions), tuple(deliveries)))


def run_once(channel_factory, seed: int, cache_slots: int = 0):
    rng = np.random.default_rng(99)
    positions = rng.uniform(0, 4, size=(30, 2))
    channel = channel_factory(positions, cache_slots)
    nodes = [RandomBeacon(i) for i in range(30)]
    schedule = WakeupSchedule.uniform_random(30, max_delay=5, seed=7)
    recorder = SequenceRecorder()
    simulator = SlotSimulator(
        channel, nodes, schedule, seed=seed, observers=[recorder]
    )
    stats = simulator.run(max_slots=60)
    return stats, recorder.sequence


def sinr_factory(positions, cache_slots):
    return SINRChannel(positions, PARAMS, cache_slots=cache_slots)


def graph_factory(positions, cache_slots):
    return GraphChannel(positions, PARAMS.r_t)


def protocol_factory(positions, cache_slots):
    return ProtocolChannel(positions, PARAMS.r_t, guard=0.5, cache_slots=cache_slots)


def collision_free_factory(positions, cache_slots):
    return CollisionFreeChannel(positions, PARAMS.r_t, cache_slots=cache_slots)


class TestRunDeterminism:
    def test_sinr_runs_bit_identical(self):
        first_stats, first_seq = run_once(sinr_factory, seed=5)
        second_stats, second_seq = run_once(sinr_factory, seed=5)
        assert first_stats == second_stats
        assert first_seq == second_seq

    def test_all_channel_types_bit_identical(self):
        for factory in (
            sinr_factory,
            graph_factory,
            protocol_factory,
            collision_free_factory,
        ):
            first_stats, first_seq = run_once(factory, seed=3)
            second_stats, second_seq = run_once(factory, seed=3)
            assert first_stats == second_stats, factory.__name__
            assert first_seq == second_seq, factory.__name__

    def test_different_seeds_diverge(self):
        # sanity check that the equality assertions above have teeth
        first_stats, first_seq = run_once(sinr_factory, seed=5)
        other_stats, other_seq = run_once(sinr_factory, seed=6)
        assert (first_stats, first_seq) != (other_stats, other_seq)

    def test_cache_does_not_change_the_run(self):
        # caching is a pure optimisation: the full event sequence with the
        # geometry cache enabled is identical to the uncached run
        for factory in (sinr_factory, protocol_factory, collision_free_factory):
            cold_stats, cold_seq = run_once(factory, seed=11, cache_slots=0)
            warm_stats, warm_seq = run_once(factory, seed=11, cache_slots=16)
            assert cold_stats == warm_stats, factory.__name__
            assert cold_seq == warm_seq, factory.__name__
