"""Unit tests for wake-up schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.scheduler import WakeupSchedule


class TestConstruction:
    def test_synchronous(self):
        schedule = WakeupSchedule.synchronous(5)
        assert len(schedule) == 5
        assert schedule.last_wake == 0
        np.testing.assert_array_equal(schedule.wake_slots, np.zeros(5))

    def test_uniform_random_in_range(self):
        schedule = WakeupSchedule.uniform_random(100, max_delay=50, seed=1)
        assert schedule.wake_slots.min() >= 0
        assert schedule.wake_slots.max() <= 50

    def test_uniform_random_deterministic(self):
        a = WakeupSchedule.uniform_random(20, 10, seed=3)
        b = WakeupSchedule.uniform_random(20, 10, seed=3)
        np.testing.assert_array_equal(a.wake_slots, b.wake_slots)

    def test_staggered(self):
        schedule = WakeupSchedule.staggered(4, interval=10)
        np.testing.assert_array_equal(schedule.wake_slots, [0, 10, 20, 30])
        assert schedule.last_wake == 30

    def test_rejects_negative_wake(self):
        with pytest.raises(ConfigurationError):
            WakeupSchedule(np.array([-1, 0]))

    def test_rejects_float_slots(self):
        with pytest.raises(ConfigurationError):
            WakeupSchedule(np.array([0.5, 1.0]))

    def test_empty_schedule(self):
        schedule = WakeupSchedule.synchronous(0)
        assert len(schedule) == 0
        assert schedule.last_wake == 0


class TestQueries:
    def test_awake_mask(self):
        schedule = WakeupSchedule(np.array([0, 5, 10]))
        np.testing.assert_array_equal(schedule.awake_mask(0), [True, False, False])
        np.testing.assert_array_equal(schedule.awake_mask(5), [True, True, False])
        np.testing.assert_array_equal(schedule.awake_mask(99), [True, True, True])

    def test_waking_now(self):
        schedule = WakeupSchedule(np.array([0, 5, 5, 10]))
        np.testing.assert_array_equal(schedule.waking_now(5), [1, 2])
        np.testing.assert_array_equal(schedule.waking_now(3), [])

    def test_wake_slot(self):
        schedule = WakeupSchedule(np.array([0, 7]))
        assert schedule.wake_slot(1) == 7
