"""Unit tests for the trace recorder."""

from repro.simulation.trace import TraceRecorder


class TestTraceRecorder:
    def test_records_in_order(self):
        trace = TraceRecorder()
        trace.record(0, 1, "enter_A", 0)
        trace.record(5, 2, "enter_C", 3)
        assert len(trace) == 2
        assert trace.events[0].kind == "enter_A"
        assert trace.events[1].slot == 5

    def test_disabled_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, 0, "x")
        assert len(trace) == 0

    def test_of_kind(self):
        trace = TraceRecorder()
        trace.record(0, 0, "a")
        trace.record(1, 1, "b")
        trace.record(2, 2, "a")
        assert [e.slot for e in trace.of_kind("a")] == [0, 2]

    def test_for_node(self):
        trace = TraceRecorder()
        trace.record(0, 7, "a")
        trace.record(1, 8, "a")
        trace.record(2, 7, "b")
        assert [e.kind for e in trace.for_node(7)] == ["a", "b"]

    def test_kind_counts(self):
        trace = TraceRecorder()
        for _ in range(3):
            trace.record(0, 0, "reset")
        trace.record(0, 0, "enter_C")
        assert trace.kind_counts() == {"reset": 3, "enter_C": 1}

    def test_first_of_kind(self):
        trace = TraceRecorder()
        trace.record(3, 0, "enter_C", 1)
        trace.record(9, 0, "enter_C", 2)
        first = trace.first_of_kind("enter_C", 0)
        assert first.slot == 3
        assert trace.first_of_kind("enter_C", 99) is None

    def test_detail_payload(self):
        trace = TraceRecorder()
        trace.record(0, 0, "serve", (4, 2))
        assert trace.events[0].detail == (4, 2)
