"""Unit tests for the per-slot simulator engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.node import NodeProcess, SlotApi
from repro.simulation.scheduler import WakeupSchedule
from repro.simulation.simulator import SlotSimulator
from repro.sinr.channel import CollisionFreeChannel


class Beacon(NodeProcess):
    """Transmits its id every slot; records everything it hears."""

    def __init__(self, node_id, transmit=True):
        self.node_id = node_id
        self.transmit = transmit
        self.heard = []
        self.slots_seen = 0

    def on_slot(self, api: SlotApi):
        self.slots_seen += 1
        return self.node_id if self.transmit else None

    def on_receive(self, api: SlotApi, sender, payload):
        self.heard.append((api.slot, sender, payload))


class Countdown(NodeProcess):
    """Decides after a fixed number of slots, never transmits."""

    def __init__(self, ttl):
        self.ttl = ttl

    def on_slot(self, api: SlotApi):
        self.ttl -= 1
        return None

    @property
    def decided(self):
        return self.ttl <= 0


def make_simulator(nodes, positions=None, schedule=None, **kwargs):
    n = len(nodes)
    if positions is None:
        positions = np.column_stack([np.arange(n) * 0.5, np.zeros(n)])
    channel = CollisionFreeChannel(positions, radius=1.0)
    if schedule is None:
        schedule = WakeupSchedule.synchronous(n)
    return SlotSimulator(channel, nodes, schedule, **kwargs)


class TestStep:
    def test_single_transmitter_delivers(self):
        nodes = [Beacon(0), Beacon(1, transmit=False)]
        sim = make_simulator(nodes)
        transmissions, deliveries = sim.step()
        assert len(transmissions) == 1
        assert nodes[1].heard == [(0, 0, 0)]

    def test_sleeping_node_does_not_act_or_hear(self):
        nodes = [Beacon(0), Beacon(1, transmit=False)]
        schedule = WakeupSchedule(np.array([0, 5]))
        sim = make_simulator(nodes, schedule=schedule)
        sim.step()
        assert nodes[1].slots_seen == 0
        assert nodes[1].heard == []  # radio off while asleep

    def test_wake_slot_joins(self):
        nodes = [Beacon(0, transmit=False), Beacon(1, transmit=False)]
        schedule = WakeupSchedule(np.array([0, 3]))
        sim = make_simulator(nodes, schedule=schedule)
        for _ in range(5):
            sim.step()
        assert nodes[0].slots_seen == 5
        assert nodes[1].slots_seen == 2


class TestRun:
    def test_stops_when_all_decided(self):
        nodes = [Countdown(3), Countdown(5)]
        sim = make_simulator(nodes)
        stats = sim.run(max_slots=100)
        assert stats.completed
        assert stats.slots_run == 5
        assert stats.decided_count == 2

    def test_budget_exhaustion(self):
        nodes = [Countdown(1000)]
        sim = make_simulator(nodes)
        stats = sim.run(max_slots=10)
        assert not stats.completed
        assert stats.slots_run == 10

    def test_custom_stop(self):
        nodes = [Beacon(0), Beacon(1)]
        sim = make_simulator(nodes)
        stats = sim.run(max_slots=100, stop=lambda s: s.slot >= 7)
        assert stats.completed
        assert stats.slots_run == 7

    def test_waits_for_last_wake(self):
        # default stop refuses to declare completion before everyone woke
        nodes = [Countdown(1), Countdown(1)]
        schedule = WakeupSchedule(np.array([0, 20]))
        sim = make_simulator(nodes, schedule=schedule)
        stats = sim.run(max_slots=100)
        assert stats.completed
        assert stats.slots_run >= 21

    def test_counts_transmissions_and_deliveries(self):
        nodes = [Beacon(0), Beacon(1, transmit=False)]
        sim = make_simulator(nodes)
        stats = sim.run(max_slots=10, stop=lambda s: s.slot >= 10)
        assert stats.transmissions == 10
        assert stats.deliveries == 10


class TestObservers:
    def test_observer_sees_each_slot(self):
        seen = []

        class Observer:
            def on_slot_end(self, slot, transmissions, deliveries):
                seen.append((slot, len(transmissions), len(deliveries)))

        nodes = [Beacon(0), Beacon(1, transmit=False)]
        sim = make_simulator(nodes, observers=[Observer()])
        sim.step()
        sim.step()
        assert seen == [(0, 1, 1), (1, 1, 1)]


class TestValidation:
    def test_node_count_mismatch(self):
        channel = CollisionFreeChannel(np.zeros((2, 2)), radius=1.0)
        with pytest.raises(SimulationError):
            SlotSimulator(channel, [Beacon(0)], WakeupSchedule.synchronous(2))

    def test_schedule_mismatch(self):
        channel = CollisionFreeChannel(np.zeros((1, 2)), radius=1.0)
        with pytest.raises(SimulationError):
            SlotSimulator(channel, [Beacon(0)], WakeupSchedule.synchronous(3))
