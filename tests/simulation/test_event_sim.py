"""Unit tests for the event-driven simulator engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.event_sim import EventApi, EventNode, EventSimulator
from repro.simulation.node import NodeProcess
from repro.simulation.scheduler import WakeupSchedule
from repro.simulation.simulator import SlotSimulator
from repro.sinr.channel import CollisionFreeChannel


class EventBeacon(EventNode):
    """Transmits its id at a fixed rate; records what it hears."""

    def __init__(self, node_id, rate=1.0):
        self.node_id = node_id
        self.rate = rate
        self.heard = []
        self.tx_slots = []

    def on_wake(self, api: EventApi):
        api.set_rate(self.rate)

    def make_payload(self, api: EventApi):
        self.tx_slots.append(api.slot)
        return self.node_id

    def on_receive(self, api: EventApi, sender, payload):
        self.heard.append((api.slot, sender, payload))


class TimerNode(EventNode):
    """Fires a timer at a fixed slot, then decides."""

    def __init__(self, fire_at):
        self.fire_at = fire_at
        self.fired_at = None

    def on_wake(self, api: EventApi):
        api.set_timer(self.fire_at)

    def make_payload(self, api: EventApi):  # pragma: no cover - rate stays 0
        return None

    def on_timer(self, api: EventApi):
        self.fired_at = api.slot

    @property
    def decided(self):
        return self.fired_at is not None


def line_positions(n, spacing=0.5):
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


def make_sim(nodes, schedule=None, seed=0):
    n = len(nodes)
    channel = CollisionFreeChannel(line_positions(n), radius=1.0)
    if schedule is None:
        schedule = WakeupSchedule.synchronous(n)
    return EventSimulator(channel, nodes, schedule, seed=seed)


class TestRateOne:
    def test_rate_one_transmits_every_slot_after_wake(self):
        nodes = [EventBeacon(0, rate=1.0), EventBeacon(1, rate=0.0)]
        sim = make_sim(nodes)
        sim.run(max_slots=5, stop=lambda s: False)
        # wake at slot 0, first transmission at slot 1 (geometric >= 1)
        assert nodes[0].tx_slots == [1, 2, 3, 4]
        assert [h[0] for h in nodes[1].heard] == [1, 2, 3, 4]

    def test_zero_rate_never_transmits(self):
        nodes = [EventBeacon(0, rate=0.0), EventBeacon(1, rate=0.0)]
        sim = make_sim(nodes)
        stats = sim.run(max_slots=50, stop=lambda s: False)
        assert stats.transmissions == 0


class TestTimers:
    def test_timer_fires_exactly_once(self):
        node = TimerNode(fire_at=7)
        sim = make_sim([node])
        stats = sim.run(max_slots=100)
        assert node.fired_at == 7
        assert stats.completed
        assert stats.slots_run == 8

    def test_timer_replacement(self):
        class Rearm(TimerNode):
            def on_wake(self, api):
                api.set_timer(5)
                api.set_timer(9)  # replaces the first

        node = Rearm(fire_at=None)
        sim = make_sim([node])
        sim.run(max_slots=50)
        assert node.fired_at == 9

    def test_timer_cancellation(self):
        class Cancel(EventNode):
            def __init__(self):
                self.fired = False

            def on_wake(self, api):
                api.set_timer(5)
                api.cancel_timer()

            def make_payload(self, api):  # pragma: no cover
                return None

            def on_timer(self, api):
                self.fired = True

        node = Cancel()
        sim = make_sim([node])
        sim.run(max_slots=20, stop=lambda s: False)
        assert not node.fired

    def test_past_timer_rejected(self):
        class Bad(EventNode):
            def on_wake(self, api):
                api.set_timer(api.slot)  # allowed: same slot

            def make_payload(self, api):  # pragma: no cover
                return None

            def on_timer(self, api):
                api.set_timer(api.slot - 1)  # in the past

        with pytest.raises(SimulationError):
            make_sim([Bad()]).run(max_slots=10, stop=lambda s: False)


class TestSleep:
    def test_sleeping_node_hears_nothing(self):
        nodes = [EventBeacon(0, rate=1.0), EventBeacon(1, rate=0.0)]
        schedule = WakeupSchedule(np.array([0, 10]))
        sim = make_sim(nodes, schedule=schedule)
        sim.run(max_slots=20, stop=lambda s: False)
        assert all(slot >= 10 for slot, _, _ in nodes[1].heard)


class TestStatisticalEquivalence:
    """The event engine must be statistically identical to the slot loop."""

    class SlotCoin(NodeProcess):
        def __init__(self, p):
            self.p = p
            self.tx = 0

        def on_slot(self, api):
            if api.flip(self.p):
                self.tx += 1
                return "x"
            return None

    class EventCoin(EventNode):
        def __init__(self, p):
            self.p = p
            self.tx = 0

        def on_wake(self, api):
            api.set_rate(self.p)

        def make_payload(self, api):
            self.tx += 1
            return "x"

    def test_transmission_rate_matches(self):
        slots, p = 4000, 0.07
        slot_node = self.SlotCoin(p)
        channel = CollisionFreeChannel(np.zeros((1, 2)), radius=1.0)
        SlotSimulator(
            channel, [slot_node], WakeupSchedule.synchronous(1), seed=5
        ).run(max_slots=slots, stop=lambda s: False)
        event_node = self.EventCoin(p)
        EventSimulator(
            channel, [event_node], WakeupSchedule.synchronous(1), seed=6
        ).run(max_slots=slots, stop=lambda s: False)
        expected = slots * p
        sigma = (slots * p * (1 - p)) ** 0.5
        assert abs(slot_node.tx - expected) < 5 * sigma
        assert abs(event_node.tx - expected) < 5 * sigma


class TestValidation:
    def test_node_count_mismatch(self):
        channel = CollisionFreeChannel(np.zeros((2, 2)), radius=1.0)
        with pytest.raises(SimulationError):
            EventSimulator(
                channel, [EventBeacon(0)], WakeupSchedule.synchronous(2)
            )

    def test_bad_rate_rejected(self):
        class BadRate(EventNode):
            def on_wake(self, api):
                api.set_rate(1.5)

            def make_payload(self, api):  # pragma: no cover
                return None

        with pytest.raises(SimulationError):
            make_sim([BadRate()]).run(max_slots=5, stop=lambda s: False)

    def test_max_slots_respected(self):
        nodes = [EventBeacon(0, rate=1.0)]
        sim = make_sim(nodes)
        stats = sim.run(max_slots=10, stop=lambda s: False)
        assert stats.slots_run == 10
        assert all(slot < 10 for slot in nodes[0].tx_slots)
