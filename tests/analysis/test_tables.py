"""Unit tests for table rendering."""

import pytest

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert lines[2].split() == ["1", "x"]
        assert lines[3].split() == ["22", "yy"]

    def test_title(self):
        text = format_table([{"a": 1}], title="EXP-1")
        assert text.startswith("EXP-1")

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].split() == ["b", "a"]

    def test_missing_value_dash(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "-" in text.splitlines()[2]

    def test_bool_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_float_rendering(self):
        text = format_table([{"v": 0.123456}])
        assert "0.123" in text

    def test_large_float_compact(self):
        text = format_table([{"v": 123456.789}])
        assert "1.23e+05" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([{"a": 1}], columns=[])
