"""Unit tests for the shape-fitting helper."""

import pytest

from repro.analysis.metrics import fit_shape
from repro.errors import ConfigurationError


class TestFitShape:
    def test_exact_linear_data(self):
        rows = [{"shape": s, "value": 7.0 * s} for s in (1.0, 2.0, 5.0)]
        constant, spread = fit_shape(rows, "shape", "value")
        assert constant == pytest.approx(7.0)
        assert spread == pytest.approx(1.0)

    def test_spread_measures_deviation(self):
        rows = [
            {"shape": 1.0, "value": 10.0},
            {"shape": 2.0, "value": 40.0},  # per-row constants: 10 and 20
        ]
        _, spread = fit_shape(rows, "shape", "value")
        assert spread == pytest.approx(2.0)

    def test_least_squares_weighting(self):
        # large-shape rows dominate the fit
        rows = [
            {"shape": 1.0, "value": 100.0},
            {"shape": 100.0, "value": 100.0},
        ]
        constant, _ = fit_shape(rows, "shape", "value")
        assert constant == pytest.approx((100 + 10_000) / (1 + 10_000))

    def test_zero_values_give_infinite_spread(self):
        rows = [{"shape": 1.0, "value": 0.0}, {"shape": 1.0, "value": 5.0}]
        _, spread = fit_shape(rows, "shape", "value")
        assert spread == float("inf")

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_shape([], "shape", "value")

    def test_missing_column_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_shape([{"shape": 1.0}], "shape", "value")

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_shape([{"shape": 0.0, "value": 1.0}], "shape", "value")
