"""Tests for trace-derived protocol statistics."""

import pytest

from repro.analysis.protocol_stats import trace_statistics
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def stats(mw_run):
    result, _ = mw_run
    return trace_statistics(result), result


class TestTraceStatistics:
    def test_every_node_visits_a_state(self, stats):
        aggregated, result = stats
        assert aggregated.a_states_visited_mean >= 1.0
        # Theorem 2's argument: a node visits at most phi(2R_T)+2 states
        assert aggregated.a_states_visited_max <= result.constants.phi_2rt + 2

    def test_leaders_decide_before_members(self, stats):
        aggregated, _ = stats
        assert (
            aggregated.leader_decision_slot_mean
            < aggregated.member_decision_slot_mean
        )

    def test_serves_cover_all_members(self, stats):
        aggregated, result = stats
        members = result.n - len(result.leaders)
        # every member was granted a cluster color at least once
        assert aggregated.serves_total >= members

    def test_request_waits_positive(self, stats):
        aggregated, _ = stats
        assert aggregated.request_wait_mean > 0
        assert aggregated.request_wait_max >= aggregated.request_wait_mean

    def test_reset_counters_consistent(self, stats):
        aggregated, result = stats
        assert aggregated.resets_total == len(result.trace.of_kind("reset"))
        assert aggregated.resets_per_node_max >= aggregated.resets_per_node_mean

    def test_rows_render(self, stats):
        aggregated, _ = stats
        rows = aggregated.rows()
        assert len(rows) == 10
        assert all({"statistic", "value"} <= set(r) for r in rows)

    def test_untraced_run_rejected(self, small_deployment, params):
        from repro import run_mw_coloring

        result = run_mw_coloring(
            small_deployment, params, seed=2, max_slots=50
        )  # trace off
        with pytest.raises(ConfigurationError):
            trace_statistics(result)
