"""Unit tests for the sweep harness."""

import pytest

from repro.analysis.sweep import sweep
from repro.errors import ConfigurationError


class TestSweep:
    def test_cross_product_with_seeds(self):
        rows = sweep(
            lambda seed, a, b: {"value": a * b + seed},
            grid={"a": [1, 2], "b": [10]},
            seeds=[0, 1],
        )
        assert len(rows) == 4
        assert rows[0] == {"a": 1, "b": 10, "seed": 0, "value": 10}
        assert rows[-1] == {"a": 2, "b": 10, "seed": 1, "value": 21}

    def test_none_skips(self):
        rows = sweep(
            lambda seed, a: None if a == 1 else {"v": a},
            grid={"a": [1, 2]},
        )
        assert len(rows) == 1
        assert rows[0]["a"] == 2

    def test_list_of_rows_flattened(self):
        rows = sweep(
            lambda seed, a: [{"part": 0}, {"part": 1}],
            grid={"a": [5]},
        )
        assert len(rows) == 2
        assert all(r["a"] == 5 for r in rows)

    def test_run_keys_take_precedence(self):
        rows = sweep(lambda seed, a: {"a": 99}, grid={"a": [1]})
        assert rows[0]["a"] == 99

    def test_progress_callback(self):
        seen = []
        sweep(lambda seed, a: {"v": a}, grid={"a": [1, 2]}, progress=seen.append)
        assert len(seen) == 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(lambda seed: {}, grid={})
