"""Unit tests for the sweep harness."""

import pytest

from repro.analysis.sweep import enumerate_combos, sweep
from repro.errors import ConfigurationError

#: Output of the pre-refactor serial ``sweep()`` (captured before
#: ``enumerate_combos`` was factored out) for the scenario exercised by
#: ``test_serial_output_bit_identical`` — the refactor must not move a row.
GOLDEN_ROWS = [
    {"a": 1, "b": "x", "seed": 0, "v": 10},
    {"a": 1, "b": "x", "seed": 1, "v": 11},
    {"a": 1, "b": "y", "seed": 0, "v": 10, "tag": "first"},
    {"a": 1, "b": "y", "seed": 0, "v": -1, "tag": "second"},
    {"a": 1, "b": "y", "seed": 1, "v": 11, "tag": "first"},
    {"a": 1, "b": "y", "seed": 1, "v": -1, "tag": "second"},
    {"a": 2, "b": "x", "seed": 0, "v": 20},
    {"a": 2, "b": "y", "seed": 0, "v": 20, "tag": "first"},
    {"a": 2, "b": "y", "seed": 0, "v": -1, "tag": "second"},
]


class TestSweep:
    def test_cross_product_with_seeds(self):
        rows = sweep(
            lambda seed, a, b: {"value": a * b + seed},
            grid={"a": [1, 2], "b": [10]},
            seeds=[0, 1],
        )
        assert len(rows) == 4
        assert rows[0] == {"a": 1, "b": 10, "seed": 0, "value": 10}
        assert rows[-1] == {"a": 2, "b": 10, "seed": 1, "value": 21}

    def test_none_skips(self):
        rows = sweep(
            lambda seed, a: None if a == 1 else {"v": a},
            grid={"a": [1, 2]},
        )
        assert len(rows) == 1
        assert rows[0]["a"] == 2

    def test_list_of_rows_flattened(self):
        rows = sweep(
            lambda seed, a: [{"part": 0}, {"part": 1}],
            grid={"a": [5]},
        )
        assert len(rows) == 2
        assert all(r["a"] == 5 for r in rows)

    def test_run_keys_take_precedence(self):
        rows = sweep(lambda seed, a: {"a": 99}, grid={"a": [1]})
        assert rows[0]["a"] == 99

    def test_progress_callback(self):
        seen = []
        sweep(lambda seed, a: {"v": a}, grid={"a": [1, 2]}, progress=seen.append)
        assert len(seen) == 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(lambda seed: {}, grid={})

    def test_serial_output_bit_identical(self):
        """The enumerate_combos refactor must not change sweep() output.

        GOLDEN_ROWS was captured from the pre-refactor implementation:
        same rows, same key order within each row, same row order.
        """

        def fake(seed, a, b):
            if a == 2 and seed == 1:
                return None
            if b == "y":
                return [{"v": a * 10 + seed, "tag": "first"},
                        {"v": -1, "tag": "second"}]
            return {"v": a * 10 + seed}

        rows = sweep(fake, {"a": [1, 2], "b": ["x", "y"]}, seeds=[0, 1])
        assert rows == GOLDEN_ROWS
        # bit-identical, not merely equal: key insertion order preserved
        assert [list(r.items()) for r in rows] == [
            list(r.items()) for r in GOLDEN_ROWS
        ]


class TestEnumerateCombos:
    def test_canonical_order_matches_sweep(self):
        combos = list(enumerate_combos({"a": [1, 2], "b": ["x"]}, seeds=[0, 1]))
        assert combos == [
            ({"a": 1, "b": "x"}, 0),
            ({"a": 1, "b": "x"}, 1),
            ({"a": 2, "b": "x"}, 0),
            ({"a": 2, "b": "x"}, 1),
        ]

    def test_empty_grid_yields_seed_only_units(self):
        assert list(enumerate_combos({}, seeds=[3, 4])) == [({}, 3), ({}, 4)]

    def test_combos_are_fresh_dicts(self):
        combos = list(enumerate_combos({"a": [1]}, seeds=[0, 1]))
        combos[0][0]["a"] = 99
        assert combos[1][0]["a"] == 1
