"""Tests for per-node transmission accounting."""

import numpy as np
import pytest

from repro.analysis.energy import TransmissionCounter
from repro.errors import ConfigurationError
from repro.sinr.channel import Delivery, Transmission


class TestTransmissionCounter:
    def test_counts_traffic(self):
        counter = TransmissionCounter(n=3)
        counter.on_slot_end(
            0,
            [Transmission(0, "a"), Transmission(1, "b")],
            [Delivery(2, 0, "a")],
        )
        counter.on_slot_end(1, [Transmission(0, "c")], [])
        np.testing.assert_array_equal(counter.tx_counts, [2, 1, 0])
        np.testing.assert_array_equal(counter.rx_counts, [0, 0, 1])
        assert counter.total_transmissions == 3
        assert counter.total_receptions == 1
        assert counter.slots_seen == 2

    def test_busiest(self):
        counter = TransmissionCounter(n=3)
        counter.on_slot_end(0, [Transmission(2, "x"), Transmission(1, "y")], [])
        counter.on_slot_end(1, [Transmission(2, "x")], [])
        assert counter.busiest(1) == [(2, 2)]

    def test_imbalance(self):
        counter = TransmissionCounter(n=2)
        counter.on_slot_end(0, [Transmission(0, "x")], [])
        assert counter.imbalance() == pytest.approx(2.0)

    def test_imbalance_empty(self):
        assert TransmissionCounter(n=2).imbalance() == 1.0

    def test_summary_keys(self):
        counter = TransmissionCounter(n=2)
        row = counter.summary()
        assert set(row) == {
            "slots", "tx_total", "rx_total",
            "tx_per_node_mean", "tx_per_node_max", "imbalance",
        }

    def test_n_validated(self):
        with pytest.raises(ConfigurationError):
            TransmissionCounter(n=0)


class TestDuringProtocolRun:
    def test_leaders_transmit_more(self, small_deployment, params):
        from repro import run_mw_coloring

        counter = TransmissionCounter(n=small_deployment.n)
        result = run_mw_coloring(
            small_deployment, params, seed=2, observers=[counter]
        )
        assert result.stats.completed
        assert counter.total_transmissions == result.stats.transmissions
        # leaders announce at q_l >> q_s, so their energy use dominates
        leader_tx = counter.tx_counts[result.leaders].mean()
        others = np.setdiff1d(np.arange(result.n), result.leaders)
        member_tx = counter.tx_counts[others].mean()
        assert leader_tx > 2 * member_tx
