"""Unit tests for metric rows and aggregation."""

import pytest

from repro.analysis.metrics import aggregate_rows, coloring_row
from repro.errors import ConfigurationError


class TestAggregateRows:
    def test_groups_and_means(self):
        rows = [
            {"n": 10, "slots": 100},
            {"n": 10, "slots": 200},
            {"n": 20, "slots": 400},
        ]
        agg = aggregate_rows(rows, group_by=["n"], values=["slots"])
        assert len(agg) == 2
        first = agg[0]
        assert first["n"] == 10
        assert first["runs"] == 2
        assert first["slots_mean"] == pytest.approx(150.0)
        assert first["slots_min"] == 100
        assert first["slots_max"] == 200
        assert first["slots_std"] == pytest.approx(70.71, rel=1e-3)

    def test_single_row_std_zero(self):
        agg = aggregate_rows([{"k": 1, "v": 5}], ["k"], ["v"])
        assert agg[0]["v_std"] == 0.0

    def test_boolean_fraction(self):
        rows = [{"k": 0, "ok": True}, {"k": 0, "ok": False}]
        agg = aggregate_rows(rows, ["k"], ["ok"])
        assert agg[0]["ok_mean"] == pytest.approx(0.5)

    def test_sorted_by_group(self):
        rows = [{"k": 3, "v": 1}, {"k": 1, "v": 1}, {"k": 2, "v": 1}]
        agg = aggregate_rows(rows, ["k"], ["v"])
        assert [r["k"] for r in agg] == [1, 2, 3]

    def test_missing_column_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_rows([{"a": 1}], ["a"], ["nope"])

    def test_empty_rows(self):
        assert aggregate_rows([], ["a"], ["b"]) == []


class TestColoringRow:
    def test_contains_normalised_columns(self, mw_run):
        result, _ = mw_run
        row = coloring_row(result)
        assert row["slots_per_shape"] > 0
        assert row["colors_per_delta"] > 0
        assert row["proper"] is True
