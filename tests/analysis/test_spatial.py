"""Unit tests for link-budget analysis."""

import numpy as np
import pytest

from repro.analysis.spatial import link_budget, link_budgets, weakest_links
from repro.graphs.udg import UnitDiskGraph
from repro.sinr.params import PhysicalParams


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


class TestLinkBudget:
    def test_budget_at_rt_equals_noise(self, params):
        # the paper's margin: at exactly R_T, tolerable interference == N
        assert link_budget(params, params.r_t) == pytest.approx(params.noise)

    def test_budget_at_rmax_is_zero(self, params):
        assert link_budget(params, params.r_max) == pytest.approx(0.0, abs=1e-12)

    def test_short_links_have_huge_budgets(self, params):
        assert link_budget(params, 0.5) > 10 * params.noise

    def test_monotone_decreasing_in_length(self, params):
        lengths = [0.3, 0.6, 0.9, 1.1]
        budgets = [link_budget(params, x) for x in lengths]
        assert budgets == sorted(budgets, reverse=True)

    def test_zero_length_rejected(self, params):
        with pytest.raises(ValueError):
            link_budget(params, 0.0)


class TestLinkBudgets:
    def test_both_directions_listed(self, params):
        positions = np.array([[0.0, 0.0], [0.8, 0.0]])
        graph = UnitDiskGraph(positions, params.r_t)
        budgets = link_budgets(graph, params)
        pairs = {(b.sender, b.receiver) for b in budgets}
        assert pairs == {(0, 1), (1, 0)}

    def test_symmetric_budgets(self, params):
        positions = np.array([[0.0, 0.0], [0.8, 0.0]])
        graph = UnitDiskGraph(positions, params.r_t)
        a, b = link_budgets(graph, params)
        assert a.budget == b.budget
        assert a.margin_db == b.margin_db

    def test_margin_db_positive_within_rt(self, params):
        positions = np.array([[0.0, 0.0], [0.7, 0.0]])
        graph = UnitDiskGraph(positions, params.r_t)
        budgets = link_budgets(graph, params)
        assert all(b.margin_db > 0 for b in budgets)

    def test_empty_graph(self, params):
        graph = UnitDiskGraph(np.array([[0.0, 0.0]]), params.r_t)
        assert link_budgets(graph, params) == []


class TestWeakestLinks:
    def test_sorted_ascending(self, params):
        rng = np.random.default_rng(1)
        positions = rng.uniform(0, 5, size=(40, 2))
        graph = UnitDiskGraph(positions, params.r_t)
        weakest = weakest_links(graph, params, count=6)
        values = [b.budget for b in weakest]
        assert values == sorted(values)

    def test_weakest_are_longest(self, params):
        rng = np.random.default_rng(2)
        positions = rng.uniform(0, 5, size=(40, 2))
        graph = UnitDiskGraph(positions, params.r_t)
        all_budgets = link_budgets(graph, params)
        weakest = weakest_links(graph, params, count=4)
        longest = max(b.length for b in all_budgets)
        assert weakest[0].length == pytest.approx(longest)

    def test_count_validation(self, params):
        graph = UnitDiskGraph(np.array([[0.0, 0.0]]), params.r_t)
        with pytest.raises(ValueError):
            weakest_links(graph, params, count=-1)
