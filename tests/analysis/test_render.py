"""Unit tests for the ASCII renderer."""

import numpy as np
import pytest

from repro.analysis.render import render_coloring, render_deployment
from repro.errors import ConfigurationError


class TestRenderDeployment:
    def test_marks_every_isolated_node(self):
        positions = np.array([[0.0, 0.0], [5.0, 5.0], [0.0, 5.0]])
        art = render_deployment(positions, width=20)
        assert art.count("*") == 3

    def test_overlap_marker(self):
        positions = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0]])
        art = render_deployment(positions, width=10)
        assert "+" in art

    def test_width_respected(self):
        positions = np.random.default_rng(0).uniform(0, 4, size=(30, 2))
        art = render_deployment(positions, width=40)
        assert all(len(line) == 40 for line in art.splitlines())

    def test_single_point(self):
        art = render_deployment(np.array([[1.0, 1.0]]), width=8)
        assert art.count("*") == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_deployment(np.zeros((0, 2)))


class TestRenderColoring:
    def test_leaders_rendered_as_at(self):
        positions = np.array([[0.0, 0.0], [5.0, 5.0]])
        art = render_coloring(positions, np.array([0, 3]), width=12)
        assert "@" in art
        assert "leaders" in art

    def test_distinct_colors_distinct_glyphs(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        art = render_coloring(positions, np.array([1, 2, 3]), width=30)
        body = art.splitlines()[:-1]
        glyphs = {ch for line in body for ch in line if ch != " "}
        assert len(glyphs) == 3

    def test_legend_counts_classes(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        art = render_coloring(positions, np.array([1, 1, 7]), width=30)
        assert "2 color classes" in art

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_coloring(np.zeros((2, 2)), np.array([0]))

    def test_many_colors_cycle_glyphs(self):
        n = 100
        positions = np.column_stack(
            [np.arange(n, dtype=float), np.zeros(n)]
        )
        art = render_coloring(positions, np.arange(n), width=120)
        assert isinstance(art, str)
