"""Unit tests for theoretical predictions."""

import math

import pytest

from repro.analysis.theory import (
    lemma3_interference_bound,
    mac_distance,
    palette_bound,
    simulation_slot_bound,
    time_bound_shape,
)
from repro.sinr.params import PhysicalParams


class TestPaletteBound:
    def test_formula(self):
        assert palette_bound(phi_2rt=5, delta=10) == 66

    def test_linear_in_delta(self):
        assert palette_bound(5, 20) - palette_bound(5, 10) == 60


class TestTimeShape:
    def test_formula(self):
        assert time_bound_shape(10, 100) == pytest.approx(10 * math.log(100))

    def test_log_clamped(self):
        assert time_bound_shape(10, 2) == pytest.approx(10.0)

    def test_monotone(self):
        assert time_bound_shape(10, 1000) > time_bound_shape(10, 100)
        assert time_bound_shape(20, 100) > time_bound_shape(10, 100)


class TestPhysicalBounds:
    def test_lemma3_matches_params(self):
        params = PhysicalParams().with_r_t(1.0)
        assert lemma3_interference_bound(params) == pytest.approx(
            params.power / (2 * params.rho * params.beta)
        )

    def test_mac_distance_matches_params(self):
        params = PhysicalParams()
        assert mac_distance(params) == params.mac_distance


class TestSimulationBound:
    def test_additive_structure(self):
        base = simulation_slot_bound(delta=10, n=100, tau=0, frame_length=30)
        with_rounds = simulation_slot_bound(delta=10, n=100, tau=5, frame_length=30)
        assert with_rounds - base == 150

    def test_zero_rounds(self):
        assert simulation_slot_bound(10, 100, 0, 30) == math.ceil(
            time_bound_shape(10, 100)
        )
