"""Unit tests for the MW message types."""

import pytest

from repro.coloring.messages import MsgA, MsgC, MsgR


class TestMsgA:
    def test_fields(self):
        msg = MsgA(i=3, sender=7, counter=-12)
        assert (msg.i, msg.sender, msg.counter) == (3, 7, -12)

    def test_hashable_and_equal(self):
        assert MsgA(1, 2, 3) == MsgA(1, 2, 3)
        assert len({MsgA(1, 2, 3), MsgA(1, 2, 3), MsgA(1, 2, 4)}) == 2


class TestMsgC:
    def test_announcement(self):
        msg = MsgC(i=5, sender=2)
        assert not msg.is_grant
        assert msg.target is None

    def test_grant(self):
        msg = MsgC(i=0, sender=2, target=9, tc=3)
        assert msg.is_grant
        assert msg.tc == 3

    def test_grant_requires_both_fields(self):
        with pytest.raises(ValueError):
            MsgC(i=0, sender=2, target=9)
        with pytest.raises(ValueError):
            MsgC(i=0, sender=2, tc=3)

    def test_only_leaders_grant(self):
        with pytest.raises(ValueError):
            MsgC(i=4, sender=2, target=9, tc=3)

    def test_frozen(self):
        msg = MsgC(i=0, sender=1)
        with pytest.raises(AttributeError):
            msg.i = 2


class TestMsgR:
    def test_fields(self):
        msg = MsgR(sender=4, leader=11)
        assert (msg.sender, msg.leader) == (4, 11)

    def test_equality(self):
        assert MsgR(1, 2) == MsgR(1, 2)
        assert MsgR(1, 2) != MsgR(2, 1)
