"""Unit tests for the independence auditor."""

import numpy as np

from repro.coloring.audit import IndependenceAuditor


def make_auditor():
    positions = np.array([[0.0, 0.0], [0.5, 0.0], [3.0, 0.0]])
    return IndependenceAuditor(positions=positions, radius=1.0)


class TestAuditor:
    def test_clean_when_far_apart(self):
        auditor = make_auditor()
        auditor.on_decision(10, 0, 0)
        auditor.on_decision(20, 2, 0)
        assert auditor.clean
        assert auditor.decisions_audited == 2

    def test_detects_close_same_class(self):
        auditor = make_auditor()
        auditor.on_decision(10, 0, 0)
        auditor.on_decision(20, 1, 0)
        assert not auditor.clean
        violation = auditor.violations[0]
        assert violation.pair == (0, 1)
        assert violation.color_index == 0
        assert violation.slot == 20
        assert violation.distance == 0.5

    def test_different_classes_never_violate(self):
        auditor = make_auditor()
        auditor.on_decision(10, 0, 0)
        auditor.on_decision(20, 1, 5)
        assert auditor.clean

    def test_boundary_distance_is_violation(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        auditor = IndependenceAuditor(positions=positions, radius=1.0)
        auditor.on_decision(1, 0, 3)
        auditor.on_decision(2, 1, 3)
        assert not auditor.clean  # independence needs distance > radius

    def test_members_tracked_in_decision_order(self):
        auditor = make_auditor()
        auditor.on_decision(5, 2, 1)
        auditor.on_decision(6, 0, 1)
        assert auditor.members_of(1) == [2, 0]
        assert auditor.members_of(99) == []

    def test_multiple_violations_accumulate(self):
        positions = np.array([[0.0, 0.0], [0.3, 0.0], [0.6, 0.0]])
        auditor = IndependenceAuditor(positions=positions, radius=1.0)
        auditor.on_decision(1, 0, 0)
        auditor.on_decision(2, 1, 0)
        auditor.on_decision(3, 2, 0)
        assert len(auditor.violations) == 3  # (0,1), (0,2), (1,2)
