"""Unit tests for baseline coloring algorithms."""

import numpy as np
import pytest

from repro.coloring.baselines import greedy_coloring, randomized_coloring
from repro.errors import ColoringError
from repro.geometry.deployment import uniform_deployment
from repro.graphs.udg import UnitDiskGraph


@pytest.fixture(scope="module")
def graph():
    dep = uniform_deployment(100, 6.0, seed=9)
    return UnitDiskGraph(dep.positions, radius=1.0)


class TestGreedy:
    def test_proper(self, graph):
        coloring = greedy_coloring(graph)
        assert coloring.is_valid(graph.positions, graph.radius)

    def test_at_most_delta_plus_one_colors(self, graph):
        coloring = greedy_coloring(graph)
        assert coloring.max_color <= graph.max_degree
        assert coloring.num_colors <= graph.max_degree + 1

    def test_order_changes_result_but_not_validity(self, graph):
        rng = np.random.default_rng(0)
        order = rng.permutation(graph.n)
        coloring = greedy_coloring(graph, order=order)
        assert coloring.is_valid(graph.positions, graph.radius)

    def test_bad_order_rejected(self, graph):
        with pytest.raises(ColoringError):
            greedy_coloring(graph, order=[0, 0, 1])

    def test_isolated_nodes_all_color_zero(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        graph = UnitDiskGraph(positions, radius=1.0)
        coloring = greedy_coloring(graph)
        assert set(coloring.colors) == {0}

    def test_clique_uses_exactly_size_colors(self):
        # four nodes all within radius 1 of each other
        positions = np.array([[0, 0], [0.1, 0], [0, 0.1], [0.1, 0.1]], dtype=float)
        graph = UnitDiskGraph(positions, radius=1.0)
        coloring = greedy_coloring(graph)
        assert coloring.num_colors == 4


class TestRandomized:
    def test_proper_and_bounded(self, graph):
        coloring, rounds = randomized_coloring(graph, seed=0)
        assert coloring.is_valid(graph.positions, graph.radius)
        assert coloring.max_color <= graph.max_degree
        assert rounds >= 1

    def test_deterministic_per_seed(self, graph):
        a, _ = randomized_coloring(graph, seed=5)
        b, _ = randomized_coloring(graph, seed=5)
        np.testing.assert_array_equal(a.colors, b.colors)

    def test_rounds_logarithmic_in_practice(self, graph):
        _, rounds = randomized_coloring(graph, seed=1)
        assert rounds <= 60  # O(log n) with slack

    def test_non_convergence_raises(self, graph):
        with pytest.raises(ColoringError):
            randomized_coloring(graph, seed=0, max_rounds=1)

    def test_single_node(self):
        graph = UnitDiskGraph(np.zeros((1, 2)), radius=1.0)
        coloring, _ = randomized_coloring(graph, seed=0)
        assert coloring.colors[0] == 0
