"""Unit tests for the Section II algorithm constants."""

import math

import pytest

from repro.coloring.constants import AlgorithmConstants
from repro.errors import ConfigurationError
from repro.sinr.params import PhysicalParams


@pytest.fixture()
def params():
    return PhysicalParams().with_r_t(1.0)


class TestTheoretical:
    def test_paper_inequalities_hold(self, params):
        constants = AlgorithmConstants.theoretical(params, delta=20, n=1000)
        constants.check_inequalities(strict_eta=True)

    def test_sigma_exceeds_two_gamma(self, params):
        # "By a routine computation, one can easily verify sigma > 2 gamma"
        for delta in (1, 5, 50):
            constants = AlgorithmConstants.theoretical(params, delta=delta, n=100)
            assert constants.sigma > 2 * constants.gamma

    def test_probabilities_match_formulas(self, params):
        from repro.geometry.density import phi_upper_bound

        delta = 10
        constants = AlgorithmConstants.theoretical(params, delta=delta, n=100)
        phi = phi_upper_bound(params.r_i + params.r_t, params.r_t)
        assert constants.q_l == pytest.approx(1.0 / phi)
        assert constants.q_s == pytest.approx(1.0 / (phi * delta))

    def test_eta_equality_form(self, params):
        constants = AlgorithmConstants.theoretical(params, delta=10, n=100)
        expected = 2 * constants.gamma * constants.phi_2rt + constants.sigma + 1
        assert constants.eta == pytest.approx(expected)

    def test_c_below_five_rejected(self, params):
        with pytest.raises(ConfigurationError):
            AlgorithmConstants.theoretical(params, delta=10, n=100, c=4.0)

    def test_theoretical_constants_are_huge(self, params):
        # documents *why* the simulation presets exist
        constants = AlgorithmConstants.theoretical(params, delta=10, n=100)
        assert constants.listen_slots > 10**6


class TestPractical:
    def test_defaults_valid(self):
        constants = AlgorithmConstants.practical(delta=15, n=120)
        constants.check_inequalities()

    def test_sigma_default_respects_relation(self):
        constants = AlgorithmConstants.practical(delta=15, n=120, gamma=3.0)
        assert constants.sigma == pytest.approx(7.0)

    def test_rejects_sigma_below_two_gamma(self):
        with pytest.raises(ConfigurationError):
            AlgorithmConstants.practical(delta=10, n=100, gamma=5.0, sigma=9.0)

    def test_qs_scales_inversely_with_delta(self):
        a = AlgorithmConstants.practical(delta=10, n=100)
        b = AlgorithmConstants.practical(delta=20, n=100)
        assert a.q_s == pytest.approx(2 * b.q_s)

    def test_delta_one(self):
        constants = AlgorithmConstants.practical(delta=1, n=2)
        assert 0 < constants.q_s <= 1


class TestIntervals:
    def test_zeta(self):
        constants = AlgorithmConstants.practical(delta=7, n=50)
        assert constants.zeta(0) == 1
        assert constants.zeta(1) == 7
        assert constants.zeta(99) == 7

    def test_listen_slots_formula(self):
        constants = AlgorithmConstants.practical(delta=10, n=100, eta=2.0)
        assert constants.listen_slots == math.ceil(2.0 * 10 * math.log(100))

    def test_threshold_formula(self):
        constants = AlgorithmConstants.practical(delta=10, n=100, gamma=2.0, sigma=5.0)
        assert constants.counter_threshold == math.ceil(5.0 * 10 * math.log(100))

    def test_reset_window_scales_with_zeta(self):
        constants = AlgorithmConstants.practical(delta=10, n=100, gamma=2.0)
        assert constants.reset_window(1) == math.ceil(
            10 * (constants.reset_window(0) - 1)
        ) or constants.reset_window(1) == math.ceil(2.0 * 10 * math.log(100))

    def test_log_term_clamped_for_tiny_n(self):
        constants = AlgorithmConstants.practical(delta=2, n=2)
        assert constants.log_term == 1.0

    def test_state_spacing(self):
        constants = AlgorithmConstants.practical(delta=5, n=20, phi_2rt=4)
        assert constants.state_spacing == 5

    def test_serve_slots_formula(self):
        constants = AlgorithmConstants.practical(delta=10, n=100, mu=3.0)
        assert constants.serve_slots == math.ceil(3.0 * math.log(100))


class TestScaled:
    def test_scaling_preserves_ratios(self):
        base = AlgorithmConstants.practical(delta=10, n=100)
        scaled = base.scaled(0.5)
        assert scaled.gamma == pytest.approx(base.gamma * 0.5)
        assert scaled.sigma == pytest.approx(base.sigma * 0.5)
        assert scaled.eta == pytest.approx(base.eta * 0.5)
        assert scaled.mu == pytest.approx(base.mu * 0.5)
        assert scaled.q_s == base.q_s  # probabilities untouched

    def test_scaling_preserves_inequality(self):
        base = AlgorithmConstants.practical(delta=10, n=100)
        base.scaled(0.25).check_inequalities()

    def test_preset_label_annotated(self):
        base = AlgorithmConstants.practical(delta=10, n=100)
        assert "0.5" in base.scaled(0.5).preset

    def test_rejects_nonpositive_factor(self):
        base = AlgorithmConstants.practical(delta=10, n=100)
        with pytest.raises(ConfigurationError):
            base.scaled(0.0)


class TestValidation:
    def test_describe(self):
        text = AlgorithmConstants.practical(delta=10, n=100).describe()
        assert "Delta=10" in text
        assert "threshold" in text

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            AlgorithmConstants(
                delta=5, n=10, gamma=1.0, sigma=3.0, eta=1.0, mu=1.0,
                q_s=1.5, q_l=0.5, phi_2rt=3,
            )
