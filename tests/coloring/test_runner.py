"""Integration tests for the MW coloring run harness.

These are the headline tests of the reproduction: the coloring is proper,
the leader set is independent, the palette is bounded, and the run is
deterministic per seed.  They reuse the session-scoped run from conftest.
"""

import numpy as np
import pytest

from repro import (
    PhysicalParams,
    WakeupSchedule,
    run_mw_coloring,
    uniform_deployment,
)
from repro.coloring.constants import AlgorithmConstants
from repro.coloring.runner import build_constants, default_max_slots, make_channel
from repro.errors import ConfigurationError
from repro.graphs.independent import is_independent_set
from repro.graphs.udg import UnitDiskGraph
from repro.sinr.channel import GraphChannel, SINRChannel


class TestHeadlineInvariants:
    def test_run_completes(self, mw_run):
        result, _ = mw_run
        assert result.stats.completed

    def test_coloring_proper(self, mw_run):
        result, _ = mw_run
        assert result.is_proper()
        assert result.conflicts() == []

    def test_leaders_independent(self, mw_run):
        result, _ = mw_run
        assert len(result.leaders) > 0
        assert result.leaders_independent()

    def test_live_audit_clean(self, mw_run):
        result, auditor = mw_run
        assert auditor.clean
        assert auditor.decisions_audited == result.n

    def test_palette_within_theorem2_bound(self, mw_run):
        result, _ = mw_run
        assert result.max_color <= result.palette_bound

    def test_every_node_decided(self, mw_run):
        result, _ = mw_run
        assert (result.decision_slots >= 0).all()
        assert result.stats.decided_count == result.n

    def test_leaders_cover_graph(self, mw_run):
        # leaders form a maximal-like dominating structure: every node is
        # within 2 hops of a leader's disc (each non-leader clustered under
        # a leader it could hear, i.e. within R_T of one)
        result, _ = mw_run
        positions = result.graph.positions
        leaders = result.leaders
        for node in range(result.n):
            dists = np.hypot(*(positions[leaders] - positions[node]).T)
            assert dists.min() <= result.graph.radius + 1e-9

    def test_summary_row(self, mw_run):
        result, _ = mw_run
        row = result.summary()
        assert row["proper"] is True
        assert row["n"] == result.n
        assert row["slots"] == result.slots_to_complete

    def test_decision_slots_consistent_with_trace(self, mw_run):
        result, _ = mw_run
        for event in result.trace.of_kind("enter_C"):
            assert result.decision_slots[event.node] == event.slot


class TestDeterminism:
    def test_same_seed_same_coloring(self, small_deployment, params):
        a = run_mw_coloring(small_deployment, params, seed=123, max_slots=30_000)
        b = run_mw_coloring(small_deployment, params, seed=123, max_slots=30_000)
        np.testing.assert_array_equal(a.coloring.colors, b.coloring.colors)
        assert a.slots_to_complete == b.slots_to_complete

    def test_different_seed_different_run(self, small_deployment, params):
        a = run_mw_coloring(small_deployment, params, seed=1, max_slots=30_000)
        b = run_mw_coloring(small_deployment, params, seed=2, max_slots=30_000)
        assert not np.array_equal(a.coloring.colors, b.coloring.colors)


class TestConfiguration:
    def test_empty_deployment_rejected(self, params):
        with pytest.raises(ConfigurationError):
            run_mw_coloring(np.zeros((0, 2)), params)

    def test_constants_n_mismatch_rejected(self, small_deployment, params):
        constants = AlgorithmConstants.practical(delta=5, n=999)
        with pytest.raises(ConfigurationError):
            run_mw_coloring(small_deployment, params, constants=constants)

    def test_budget_exhaustion_reported(self, small_deployment, params):
        result = run_mw_coloring(small_deployment, params, seed=0, max_slots=50)
        assert not result.stats.completed
        # undecided nodes share the sentinel color -> improper result
        assert result.stats.decided_count < result.n

    def test_graph_channel_accepted(self, params):
        dep = uniform_deployment(40, 5.0, seed=3)
        result = run_mw_coloring(dep, params, seed=1, channel="graph")
        assert result.stats.completed
        assert result.is_proper()

    def test_prebuilt_channel_accepted(self, params):
        dep = uniform_deployment(30, 5.0, seed=3)
        channel = SINRChannel(dep.positions, params)
        result = run_mw_coloring(dep, params, seed=1, channel=channel)
        assert result.stats.completed

    def test_unknown_channel_rejected(self, small_deployment, params):
        with pytest.raises(ConfigurationError):
            run_mw_coloring(small_deployment, params, channel="smoke-signals")

    def test_decision_listener_called(self, params):
        dep = uniform_deployment(25, 4.0, seed=6)
        decisions = []
        result = run_mw_coloring(
            dep,
            params,
            seed=1,
            decision_listeners=[lambda slot, node, color: decisions.append(node)],
        )
        assert sorted(decisions) == list(range(result.n))


class TestHelpers:
    def test_default_max_slots_positive_and_generous(self):
        constants = AlgorithmConstants.practical(delta=10, n=100)
        budget = default_max_slots(constants)
        assert budget > constants.listen_slots + constants.counter_threshold

    def test_build_constants_practical_measures_phi(self, params):
        dep = uniform_deployment(80, 6.0, seed=1)
        graph = UnitDiskGraph(dep.positions, params.r_t)
        constants = build_constants("practical", graph, params, graph.n)
        assert constants.delta == graph.max_degree
        assert constants.phi_2rt >= 2

    def test_build_constants_theoretical(self, params):
        dep = uniform_deployment(20, 5.0, seed=1)
        graph = UnitDiskGraph(dep.positions, params.r_t)
        constants = build_constants("theoretical", graph, params, graph.n)
        constants.check_inequalities(strict_eta=True)

    def test_make_channel_kinds(self, params):
        positions = np.zeros((3, 2))
        assert isinstance(make_channel("sinr", positions, params), SINRChannel)
        assert isinstance(make_channel("graph", positions, params), GraphChannel)


class TestSingleNode:
    def test_lonely_node_becomes_leader(self, params):
        result = run_mw_coloring(np.array([[0.0, 0.0]]), params, seed=0)
        assert result.stats.completed
        assert result.coloring.colors[0] == 0
        assert list(result.leaders) == [0]

    def test_two_distant_nodes_both_leaders(self, params):
        positions = np.array([[0.0, 0.0], [10.0, 0.0]])
        result = run_mw_coloring(positions, params, seed=0)
        assert result.stats.completed
        assert len(result.leaders) == 2

    def test_two_close_nodes_one_leader(self, params):
        positions = np.array([[0.0, 0.0], [0.5, 0.0]])
        result = run_mw_coloring(positions, params, seed=0)
        assert result.stats.completed
        assert result.is_proper()
        assert len(result.leaders) == 1
        assert is_independent_set(positions, result.leaders.tolist(), params.r_t)
