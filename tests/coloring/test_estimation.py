"""Tests for the unknown-Delta degree-estimation extension."""

import numpy as np
import pytest

from repro import PhysicalParams, UnitDiskGraph, uniform_deployment
from repro.coloring.estimation import (
    estimate_degrees,
    run_mw_coloring_estimated_delta,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def probe(params):
    dep = uniform_deployment(80, 5.5, seed=3)
    graph = UnitDiskGraph(dep.positions, params.r_t)
    estimate = estimate_degrees(dep, params, seed=1)
    return dep, graph, estimate


class TestEstimateDegrees:
    def test_heard_counts_lower_bound_degrees(self, probe):
        _, graph, estimate = probe
        assert np.all(estimate.heard_counts <= graph.degrees)

    def test_most_neighbors_heard(self, probe):
        _, graph, estimate = probe
        ratio = estimate.heard_counts / np.maximum(1, graph.degrees)
        assert ratio.mean() > 0.85

    def test_max_estimate_brackets_true_delta(self, probe):
        _, graph, estimate = probe
        assert graph.max_degree <= estimate.max_estimate
        assert estimate.max_estimate <= 4 * graph.max_degree

    def test_probe_cost_logarithmic_shape(self, probe):
        # phases * slots_per_phase + aggregation — independent of n
        _, _, estimate = probe
        assert estimate.slots_used == 12 * 40

    def test_deterministic(self, params):
        dep = uniform_deployment(40, 5.0, seed=7)
        a = estimate_degrees(dep, params, seed=2)
        b = estimate_degrees(dep, params, seed=2)
        np.testing.assert_array_equal(a.estimates, b.estimates)

    def test_aggregation_spreads_maximum(self, params):
        dep = uniform_deployment(60, 5.0, seed=9)
        none = estimate_degrees(dep, params, seed=2, aggregation_rounds=0)
        some = estimate_degrees(dep, params, seed=2, aggregation_rounds=2)
        # aggregation can only raise per-node estimates
        assert some.estimates.mean() >= none.estimates.mean()

    def test_isolated_node_estimates_one(self, params):
        positions = np.array([[0.0, 0.0], [50.0, 50.0]])
        estimate = estimate_degrees(positions, params, seed=0)
        assert estimate.heard_counts[0] == 0
        assert estimate.estimates[0] >= 1

    def test_validation(self, params):
        with pytest.raises(ConfigurationError):
            estimate_degrees(np.zeros((2, 2)), params, phases=0)


class TestUnknownDeltaColoring:
    def test_end_to_end_proper(self, params):
        dep = uniform_deployment(70, 5.5, seed=4)
        graph = UnitDiskGraph(dep.positions, params.r_t)
        result, estimate = run_mw_coloring_estimated_delta(dep, params, seed=5)
        assert result.stats.completed
        assert result.is_proper()
        assert result.constants.delta == estimate.max_estimate
        assert result.constants.delta >= graph.max_degree

    def test_n_upper_bound_stretches_log(self, params):
        dep = uniform_deployment(40, 5.0, seed=6)
        exact, _ = run_mw_coloring_estimated_delta(dep, params, seed=5)
        bounded, _ = run_mw_coloring_estimated_delta(
            dep, params, seed=5, n_upper_bound=40_000
        )
        assert bounded.stats.completed and bounded.is_proper()
        # overestimating n only lengthens the run (ln factor), never breaks it
        assert bounded.slots_to_complete >= exact.slots_to_complete

    def test_n_bound_below_n_rejected(self, params):
        dep = uniform_deployment(40, 5.0, seed=6)
        with pytest.raises(ConfigurationError):
            run_mw_coloring_estimated_delta(dep, params, n_upper_bound=10)
