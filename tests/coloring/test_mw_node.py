"""Unit tests for the MW node state machine, driven by a stub API.

These tests step a single node through the Figure 1-3 transitions with
hand-crafted message sequences, pinning the exact slot arithmetic of the
lazy-counter implementation.
"""

import numpy as np
import pytest

from repro.coloring.constants import AlgorithmConstants
from repro.coloring.messages import MsgA, MsgC, MsgR
from repro.coloring.mw_node import (
    MWColoringNode,
    MWSharedConfig,
    PHASE_COMPETE,
    PHASE_LISTEN,
    STATE_A,
    STATE_C,
    STATE_R,
)
from repro.simulation.trace import TraceRecorder


class StubApi:
    """Minimal EventApi stand-in recording scheduling calls."""

    def __init__(self, node=0):
        self.node = node
        self.slot = 0
        self.rng = np.random.default_rng(0)
        self.rate = None
        self.timer = None

    def set_rate(self, probability):
        self.rate = probability

    def set_timer(self, slot):
        self.timer = slot

    def cancel_timer(self):
        self.timer = None

    def flip(self, probability):
        return self.rng.random() < probability


def make_node(**overrides):
    """A node with tiny, exactly computable constants.

    delta=2, n=2 (log term clamps to 1) gives: listen=2 slots, threshold=6,
    window(0)=1, window(i>0)=2, serve=1, spacing=3.
    """
    defaults = dict(
        delta=2, n=2, gamma=1.0, sigma=3.0, eta=1.0, mu=1.0,
        q_s=0.5, q_l=0.5, phi_2rt=2,
    )
    defaults.update(overrides)
    constants = AlgorithmConstants(**defaults)
    trace = TraceRecorder()
    config = MWSharedConfig(constants=constants, trace=trace)
    node = MWColoringNode(node_id=0, config=config)
    api = StubApi()
    return node, api, constants


class TestWakeAndListen:
    def test_wake_enters_a0_listening(self):
        node, api, constants = make_node()
        node.on_wake(api)
        assert node.state_class == STATE_A
        assert node.state_index == 0
        assert node.phase == PHASE_LISTEN
        assert api.rate == 0.0
        assert api.timer == constants.listen_slots - 1

    def test_listen_records_competitors(self):
        node, api, _ = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 5, MsgA(i=0, sender=5, counter=3))
        assert node.tracked_counters(1) == {5: 3}
        # lazy advance: one slot later the copy has ticked
        assert node.tracked_counters(2) == {5: 4}

    def test_listen_end_starts_competition(self):
        node, api, constants = make_node()
        node.on_wake(api)
        api.slot = constants.listen_slots - 1
        node.on_timer(api)
        assert node.phase == PHASE_COMPETE
        assert api.rate == constants.q_s
        # empty P_v: chi = 0, threshold reached 6 slots later
        assert node.counter_at(api.slot) == 0
        assert api.timer == api.slot + constants.counter_threshold

    def test_chi_avoids_heard_competitor(self):
        node, api, constants = make_node()
        node.on_wake(api)
        api.slot = 1
        # competitor counter 2 at slot 1 -> value 2 at the chi slot (slot 1)
        node.on_receive(api, 5, MsgA(i=0, sender=5, counter=2))
        node.on_timer(api)  # listen ends at slot 1 (listen_slots=2)
        # window(0)=1 blocks {1,2,3}; 0 is legal and maximal
        assert node.counter_at(1) == 0


class TestCompetition:
    def advance_to_compete(self, node, api, constants):
        node.on_wake(api)
        api.slot = constants.listen_slots - 1
        node.on_timer(api)

    def test_payload_carries_lazy_counter(self):
        node, api, constants = make_node()
        self.advance_to_compete(node, api, constants)
        start = api.slot
        api.slot = start + 4
        payload = node.make_payload(api)
        assert isinstance(payload, MsgA)
        assert payload.counter == 4
        assert payload.i == 0

    def test_close_counter_triggers_reset(self):
        node, api, constants = make_node()
        self.advance_to_compete(node, api, constants)
        start = api.slot
        api.slot = start + 3  # c_v = 3
        node.on_receive(api, 5, MsgA(i=0, sender=5, counter=3))
        # |3 - 3| <= window(0)=1 -> reset; chi must dodge [2, 4]
        assert node.counter_at(api.slot) <= 0
        assert api.timer == api.slot + (
            constants.counter_threshold - node.counter_at(api.slot)
        )

    def test_distant_counter_no_reset(self):
        node, api, constants = make_node()
        self.advance_to_compete(node, api, constants)
        start = api.slot
        api.slot = start + 3  # c_v = 3
        node.on_receive(api, 5, MsgA(i=0, sender=5, counter=-10))
        assert node.counter_at(api.slot) == 3

    def test_wrong_index_msga_ignored(self):
        node, api, constants = make_node()
        self.advance_to_compete(node, api, constants)
        api.slot += 2
        node.on_receive(api, 5, MsgA(i=7, sender=5, counter=2))
        assert node.tracked_counters(api.slot) == {}

    def test_threshold_timer_enters_c(self):
        node, api, constants = make_node()
        self.advance_to_compete(node, api, constants)
        api.slot = api.timer
        node.on_timer(api)
        assert node.state_class == STATE_C
        assert node.color == 0
        assert node.decided
        assert node.is_leader
        assert node.decision_slot == api.slot


class TestClusterFlow:
    def test_msgc_moves_a0_to_r(self):
        node, api, constants = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 9, MsgC(i=0, sender=9))
        assert node.state_class == STATE_R
        assert node.leader == 9
        assert api.rate == constants.q_s

    def test_targeted_grant_of_other_node_still_clusters(self):
        # an overheard grant M_C^0(w, other, tc) is also a leader announcement
        node, api, _ = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 9, MsgC(i=0, sender=9, target=4, tc=2))
        assert node.state_class == STATE_R
        assert node.leader == 9

    def test_r_payload_is_request(self):
        node, api, _ = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 9, MsgC(i=0, sender=9))
        payload = node.make_payload(api)
        assert payload == MsgR(sender=0, leader=9)

    def test_grant_starts_spaced_competition(self):
        node, api, constants = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 9, MsgC(i=0, sender=9))
        api.slot = 10
        node.on_receive(api, 9, MsgC(i=0, sender=9, target=0, tc=2))
        assert node.state_class == STATE_A
        assert node.state_index == 2 * constants.state_spacing
        assert node.phase == PHASE_LISTEN
        assert node.cluster_color == 2
        # listening restarted from the next slot
        assert api.timer == 11 + constants.listen_slots - 1

    def test_grant_from_wrong_leader_ignored(self):
        node, api, _ = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 9, MsgC(i=0, sender=9))
        node.on_receive(api, 8, MsgC(i=0, sender=8, target=0, tc=1))
        assert node.state_class == STATE_R

    def test_msgc_in_higher_state_advances(self):
        node, api, constants = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 9, MsgC(i=0, sender=9))
        api.slot = 10
        node.on_receive(api, 9, MsgC(i=0, sender=9, target=0, tc=1))
        i = node.state_index
        api.slot = 12
        node.on_receive(api, 4, MsgC(i=i, sender=4))
        assert node.state_index == i + 1  # A_suc = A_{i+1}
        assert node.phase == PHASE_LISTEN


class TestColoredNonLeader:
    def make_colored(self, i=4):
        node, api, constants = make_node()
        node.on_wake(api)
        api.slot = 1
        node.on_receive(api, 9, MsgC(i=0, sender=9))
        api.slot = 2
        node.on_receive(api, 9, MsgC(i=0, sender=9, target=0, tc=1))
        # fast-forward: listen end, then threshold
        api.slot = api.timer
        node.on_timer(api)
        api.slot = api.timer
        node.on_timer(api)
        return node, api, constants

    def test_color_is_state_index(self):
        node, api, constants = self.make_colored()
        assert node.color == constants.state_spacing  # tc=1 * spacing
        assert not node.is_leader

    def test_payload_announces_color(self):
        node, api, _ = self.make_colored()
        payload = node.make_payload(api)
        assert payload == MsgC(i=node.color, sender=0)

    def test_ignores_traffic(self):
        node, api, _ = self.make_colored()
        color = node.color
        node.on_receive(api, 3, MsgC(i=color, sender=3))
        node.on_receive(api, 3, MsgR(sender=3, leader=0))
        assert node.color == color
        assert node.state_class == STATE_C


class TestLeader:
    def make_leader(self):
        node, api, constants = make_node()
        node.on_wake(api)
        api.slot = constants.listen_slots - 1
        node.on_timer(api)  # compete
        api.slot = api.timer
        node.on_timer(api)  # threshold -> C_0
        assert node.is_leader
        return node, api, constants

    def test_idle_leader_announces(self):
        node, api, constants = self.make_leader()
        assert api.rate == constants.q_l
        assert node.make_payload(api) == MsgC(i=0, sender=0)

    def test_request_starts_service(self):
        node, api, constants = self.make_leader()
        slot = api.slot + 1
        api.slot = slot
        node.on_receive(api, 7, MsgR(sender=7, leader=0))
        assert api.timer == slot + constants.serve_slots
        grant = node.make_payload(api)
        assert grant == MsgC(i=0, sender=0, target=7, tc=1)

    def test_requests_for_other_leader_ignored(self):
        node, api, _ = self.make_leader()
        node.on_receive(api, 7, MsgR(sender=7, leader=99))
        assert node.make_payload(api) == MsgC(i=0, sender=0)

    def test_distinct_tc_per_requester(self):
        node, api, constants = self.make_leader()
        api.slot += 1
        node.on_receive(api, 7, MsgR(sender=7, leader=0))
        node.on_receive(api, 8, MsgR(sender=8, leader=0))
        # finish serving 7
        api.slot = api.timer
        node.on_timer(api)
        grant = node.make_payload(api)
        assert grant == MsgC(i=0, sender=0, target=8, tc=2)

    def test_duplicate_request_not_requeued(self):
        node, api, constants = self.make_leader()
        api.slot += 1
        node.on_receive(api, 7, MsgR(sender=7, leader=0))
        node.on_receive(api, 7, MsgR(sender=7, leader=0))
        api.slot = api.timer
        node.on_timer(api)
        # queue drained: back to announcements
        assert node.make_payload(api) == MsgC(i=0, sender=0)

    def test_rerequest_after_lost_grant_reuses_tc(self):
        node, api, constants = self.make_leader()
        api.slot += 1
        node.on_receive(api, 7, MsgR(sender=7, leader=0))
        api.slot = api.timer
        node.on_timer(api)  # service over, grant may have been lost
        api.slot += 5
        node.on_receive(api, 7, MsgR(sender=7, leader=0))
        grant = node.make_payload(api)
        assert grant == MsgC(i=0, sender=0, target=7, tc=1)  # same tc
