"""Unit tests for the MWColoringResult value type (constructed directly)."""

import numpy as np
import pytest

from repro.coloring.constants import AlgorithmConstants
from repro.coloring.result import MWColoringResult
from repro.graphs.coloring import Coloring
from repro.graphs.udg import UnitDiskGraph
from repro.simulation.simulator import RunStats
from repro.simulation.trace import TraceRecorder


def make_result(colors, positions=None, completed=True, decision_slots=None):
    colors = np.asarray(colors, dtype=np.int64)
    n = len(colors)
    if positions is None:
        positions = np.column_stack([np.arange(n) * 2.0, np.zeros(n)])
    graph = UnitDiskGraph(np.asarray(positions, dtype=float), radius=1.0)
    if decision_slots is None:
        decision_slots = np.arange(n, dtype=np.int64)
    stats = RunStats(
        slots_run=int(max(decision_slots, default=0)) + 1,
        completed=completed,
        decided_count=n,
        transmissions=10,
        deliveries=5,
    )
    constants = AlgorithmConstants.practical(delta=max(1, n - 1), n=max(2, n))
    return MWColoringResult(
        graph=graph,
        coloring=Coloring(colors),
        leaders=np.flatnonzero(colors == 0),
        decision_slots=np.asarray(decision_slots, dtype=np.int64),
        stats=stats,
        constants=constants,
        trace=TraceRecorder(enabled=False),
    )


class TestAccessors:
    def test_counts(self):
        result = make_result([0, 3, 0, 7])
        assert result.n == 4
        assert result.num_colors == 3
        assert result.max_color == 7
        assert list(result.leaders) == [0, 2]

    def test_slots_to_complete_is_last_decision(self):
        result = make_result([0, 1], decision_slots=[3, 9])
        assert result.slots_to_complete == 10

    def test_incomplete_run_reports_budget(self):
        result = make_result([0, 1], completed=False)
        assert result.slots_to_complete == result.stats.slots_run

    def test_palette_bound_formula(self):
        result = make_result([0, 1, 2])
        constants = result.constants
        spacing = constants.state_spacing
        assert result.palette_bound == spacing * constants.delta + spacing


class TestValidityViews:
    def test_spread_nodes_proper(self):
        result = make_result([0, 0, 0])  # all 2 apart: same color fine
        assert result.is_proper()
        assert result.conflicts() == []

    def test_adjacent_same_color_detected(self):
        positions = [[0.0, 0.0], [0.5, 0.0]]
        result = make_result([4, 4], positions=positions)
        assert not result.is_proper()
        assert result.conflicts() == [(0, 1)]

    def test_leaders_independent_check(self):
        positions = [[0.0, 0.0], [0.5, 0.0]]
        result = make_result([0, 0], positions=positions)
        assert not result.leaders_independent()

    def test_summary_keys(self):
        result = make_result([0, 1])
        row = result.summary()
        assert set(row) >= {
            "n", "delta", "completed", "slots", "colors",
            "max_color", "palette_bound", "leaders", "proper",
        }


class TestDeliveryRate:
    def test_run_stats_delivery_rate(self):
        stats = RunStats(
            slots_run=10, completed=True, decided_count=1,
            transmissions=4, deliveries=6,
        )
        assert stats.delivery_rate == pytest.approx(1.5)

    def test_zero_transmissions(self):
        stats = RunStats(
            slots_run=0, completed=True, decided_count=0,
            transmissions=0, deliveries=0,
        )
        assert stats.delivery_rate == 0.0
