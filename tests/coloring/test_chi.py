"""Unit tests for the restart value chi(P_v) (Fig. 1 line 6)."""

import pytest

from repro.coloring.mw_node import chi
from repro.errors import ProtocolError


class TestChi:
    def test_empty_set_gives_zero(self):
        assert chi({}, 5) == 0

    def test_zero_allowed_when_outside_windows(self):
        assert chi({1: 100}, 5) == 0

    def test_blocked_zero_steps_below_window(self):
        # window [d-2, d+2] around d=1 blocks {-1..3}; max allowed <= 0 is -2
        assert chi({1: 1}, 2) == -2

    def test_multiple_overlapping_windows(self):
        # windows around 0 and -5 with half-width 3: [-3,3] and [-8,-2]
        # candidate 0 blocked -> -4 blocked by second -> -9
        assert chi({1: 0, 2: -5}, 3) == -9

    def test_disjoint_windows_fall_between(self):
        # windows [8,12] and [-12,-8]: 0 is free
        assert chi({1: 10, 2: -10}, 2) == 0

    def test_gap_between_windows_used(self):
        # windows [-4,0] and [-12,-8]: first free value below 0 is -5
        assert chi({1: -2, 2: -10}, 2) == -5

    def test_result_always_outside_all_windows(self):
        counters = {1: 4, 2: -3, 3: -9, 4: -9, 5: 0}
        window = 3
        value = chi(counters, window)
        assert value <= 0
        for d in counters.values():
            assert not (d - window <= value <= d + window)

    def test_maximality(self):
        counters = {1: -4}
        window = 2
        value = chi(counters, window)
        # every integer in (value, 0] must be blocked
        for candidate in range(value + 1, 1):
            assert any(
                d - window <= candidate <= d + window for d in counters.values()
            )

    def test_window_zero(self):
        assert chi({1: 0}, 0) == -1
        assert chi({1: -1}, 0) == 0

    def test_negative_window_rejected(self):
        with pytest.raises(ProtocolError):
            chi({}, -1)

    def test_many_counters_terminate(self):
        counters = {i: -3 * i for i in range(50)}
        value = chi(counters, 1)
        assert value <= -149
