"""Unit tests for palette reduction (Section V)."""

import numpy as np
import pytest

from repro.coloring.baselines import greedy_coloring
from repro.coloring.palette import reduce_palette, reduce_palette_simulated
from repro.errors import ColoringError
from repro.geometry.deployment import uniform_deployment
from repro.graphs.coloring import Coloring
from repro.graphs.power import power_graph
from repro.graphs.udg import UnitDiskGraph
from repro.sinr.params import PhysicalParams


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def setup(params):
    dep = uniform_deployment(90, 6.0, seed=12)
    graph = UnitDiskGraph(dep.positions, params.r_t)
    d = params.mac_distance
    wide = greedy_coloring(power_graph(graph, d + 1))
    return graph, wide


class TestLogicalReduction:
    def test_palette_at_most_delta_plus_one(self, setup):
        graph, wide = setup
        reduced = reduce_palette(graph, wide)
        assert reduced.max_color <= graph.max_degree
        assert reduced.num_colors <= graph.max_degree + 1

    def test_result_proper(self, setup):
        graph, wide = setup
        reduced = reduce_palette(graph, wide)
        assert reduced.is_valid(graph.positions, graph.radius)

    def test_reduces_wide_palette(self, setup):
        graph, wide = setup
        reduced = reduce_palette(graph, wide)
        assert reduced.num_colors < wide.num_colors

    def test_rejects_improper_input(self, setup):
        graph, _ = setup
        bad = Coloring(np.zeros(graph.n, dtype=np.int64))
        with pytest.raises(ColoringError):
            reduce_palette(graph, bad)

    def test_rejects_size_mismatch(self, setup):
        graph, _ = setup
        with pytest.raises(ColoringError):
            reduce_palette(graph, Coloring(np.array([0, 1])))

    def test_already_tight_palette_stays_tight(self, setup):
        graph, _ = setup
        tight = greedy_coloring(graph)
        reduced = reduce_palette(graph, tight)
        assert reduced.num_colors <= tight.num_colors + 1
        assert reduced.is_valid(graph.positions, graph.radius)


class TestSimulatedReduction:
    def test_theorem3_input_is_lossless(self, setup, params):
        graph, wide = setup
        report = reduce_palette_simulated(graph, wide, params)
        assert report.interference_free
        assert report.lost == 0
        assert report.coloring.is_valid(graph.positions, graph.radius)
        assert report.coloring.max_color <= graph.max_degree

    def test_matches_logical_procedure_when_lossless(self, setup, params):
        graph, wide = setup
        report = reduce_palette_simulated(graph, wide, params)
        logical = reduce_palette(graph, wide)
        np.testing.assert_array_equal(report.coloring.colors, logical.colors)

    def test_one_slot_per_input_color(self, setup, params):
        graph, wide = setup
        report = reduce_palette_simulated(graph, wide, params)
        assert report.slots_used == wide.num_colors

    def test_distance1_input_loses_announcements(self, params):
        # a dense deployment with a distance-1 coloring: same-color nodes
        # just beyond R_T of each other transmit together and interfere
        dep = uniform_deployment(150, 6.0, seed=3)
        graph = UnitDiskGraph(dep.positions, params.r_t)
        tight = greedy_coloring(graph)
        report = reduce_palette_simulated(graph, tight, params)
        assert report.lost > 0
