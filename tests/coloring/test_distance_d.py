"""Integration tests for distance-d coloring via power boosting (Section V)."""

import pytest

from repro import PhysicalParams, uniform_deployment
from repro.coloring.distance_d import run_distance_d_coloring
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def d2_run(params):
    # a sparse-ish deployment keeps Delta_{G^2} moderate so the run is fast
    dep = uniform_deployment(50, 8.0, seed=21)
    result = run_distance_d_coloring(dep, params, d=2.0, seed=4)
    return dep, result


class TestDistanceD:
    def test_completes(self, d2_run):
        _, result = d2_run
        assert result.stats.completed

    def test_valid_at_distance_d(self, d2_run, params):
        dep, result = d2_run
        assert result.coloring.is_valid(dep.positions, params.r_t, d=2.0)

    def test_also_valid_at_distance_one(self, d2_run, params):
        dep, result = d2_run
        assert result.coloring.is_valid(dep.positions, params.r_t, d=1.0)

    def test_graph_radius_is_boosted(self, d2_run, params):
        _, result = d2_run
        assert result.graph.radius == pytest.approx(2.0 * params.r_t)

    def test_constants_retuned_for_boosted_graph(self, d2_run):
        _, result = d2_run
        # Delta of G^2 strictly dominates Delta of G on this deployment
        assert result.constants.delta == result.graph.max_degree

    def test_invalid_d_rejected(self, params):
        dep = uniform_deployment(10, 5.0, seed=0)
        with pytest.raises(ConfigurationError):
            run_distance_d_coloring(dep, params, d=0.0)
