"""End-to-end integration tests: the paper's pipeline, claim by claim.

Each test exercises a full multi-subsystem flow — coloring under SINR, the
TDMA MAC built on a distance-d coloring, the message-passing simulation —
on deployments small enough to keep the suite fast but dense enough to be
non-trivial.
"""

import numpy as np
import pytest

from repro import (
    FloodingBroadcast,
    PhysicalParams,
    TDMASchedule,
    UnitDiskGraph,
    WakeupSchedule,
    clustered_deployment,
    greedy_coloring,
    power_graph,
    reduce_palette_simulated,
    run_mw_coloring,
    simulate_uniform_algorithm,
    uniform_deployment,
    verify_tdma_broadcast,
)
from repro.coloring.runner import run_mw_coloring_audited
from repro.messaging.model import run_uniform_rounds
from repro.sinr.interference import InterferenceMeter


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


class TestTheorem1AndTheorem2:
    """Coloring correctness over deployment families and wake-up patterns."""

    def test_clustered_deployment(self, params):
        dep = clustered_deployment(
            clusters=6, points_per_cluster=9, extent=7.0, cluster_radius=0.6, seed=2
        )
        result, auditor = run_mw_coloring_audited(dep, params, seed=5)
        assert result.stats.completed
        assert result.is_proper()
        assert auditor.clean
        assert result.max_color <= result.palette_bound

    def test_asynchronous_wakeup(self, params):
        dep = uniform_deployment(50, 5.0, seed=40)
        schedule = WakeupSchedule.uniform_random(50, max_delay=2000, seed=7)
        result, auditor = run_mw_coloring_audited(
            dep, params, seed=8, schedule=schedule
        )
        assert result.stats.completed
        assert result.is_proper()
        assert auditor.clean

    def test_graph_channel_portability(self, params):
        # the same algorithm runs under the original MW model
        dep = uniform_deployment(50, 5.0, seed=41)
        result, auditor = run_mw_coloring_audited(
            dep, params, seed=9, channel="graph"
        )
        assert result.stats.completed
        assert result.is_proper()
        assert auditor.clean


class TestLemma3:
    """Out-of-I_u interference stays below the analytic expectation bound."""

    def test_interference_bound_holds_during_run(self, params):
        dep = uniform_deployment(60, 5.0, seed=42)
        meter = InterferenceMeter(
            params=params,
            positions=dep.positions,
            receivers=np.arange(0, 60, 7),
        )

        class MeterObserver:
            def on_slot_end(self, slot, transmissions, deliveries):
                senders = np.asarray([t.sender for t in transmissions], dtype=np.intp)
                meter.observe(senders)

        result = run_mw_coloring(
            dep, params, seed=3, observers=[MeterObserver()]
        )
        assert result.stats.completed
        assert meter.slots_observed > 0
        # the paper's R_I exceeds this deployment's extent, so out-of-I_u
        # interference is exactly zero here — the bound holds trivially, and
        # measuring it confirms the geometry wiring.
        assert meter.mean_outside() <= meter.bound()


class TestSectionV:
    """MAC layer + palette reduction pipeline built on the MW coloring."""

    def test_full_pipeline_mw_to_tdma(self, params):
        # 1. distance-(d+1) coloring via the MW algorithm on boosted power
        from repro import run_distance_d_coloring

        dep = uniform_deployment(40, 8.0, seed=43)
        d = params.mac_distance
        wide = run_distance_d_coloring(dep, params, d=d + 1, seed=6)
        assert wide.stats.completed
        graph = UnitDiskGraph(dep.positions, params.r_t)
        assert wide.coloring.is_valid(dep.positions, params.r_t, d=d + 1)

        # 2. TDMA from that coloring is interference-free (Theorem 3)
        schedule = TDMASchedule(wide.coloring.compacted())
        report = verify_tdma_broadcast(graph, schedule, params)
        assert report.interference_free

        # 3. palette reduction over the same physical layer (end of Sec. V)
        reduction = reduce_palette_simulated(graph, wide.coloring, params)
        assert reduction.interference_free
        assert reduction.coloring.max_color <= graph.max_degree

    def test_corollary1_simulation_equivalence(self, params):
        dep = uniform_deployment(100, 6.0, seed=24)
        graph = UnitDiskGraph(dep.positions, params.r_t)
        assert graph.is_connected()
        coloring = greedy_coloring(power_graph(graph, params.mac_distance + 1))
        schedule = TDMASchedule(coloring)
        simulated = [FloodingBroadcast(source=5) for _ in range(graph.n)]
        report = simulate_uniform_algorithm(
            graph, simulated, schedule, params, max_rounds=80
        )
        native = [FloodingBroadcast(source=5) for _ in range(graph.n)]
        native_report = run_uniform_rounds(graph, native, max_rounds=80)
        assert report.exact
        assert report.halted
        assert [a.output() for a in simulated] == [a.output() for a in native]
        # Corollary 1 cost structure: tau frames of V slots
        assert report.slots == native_report.rounds * schedule.frame_length
