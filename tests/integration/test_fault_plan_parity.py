"""The fault-plan refactor changed nothing observable.

EXP-11 (injected loss) and EXP-13 (wake-up patterns) used to build
their channels and schedules by hand; both are now thin FaultPlan
configurations.  The fixtures under ``fixtures/`` are their row tables
captured *before* the refactor — these tests lock bit-identity, the
experiments' own acceptance checks, and the end-to-end fault surface
(telemetry artifacts, orchestrated sweeps with the plan in the config
hash, ``--resume`` round-trips).
"""

from __future__ import annotations

import json
import pathlib

from repro import PhysicalParams, uniform_deployment
from repro.coloring.runner import run_mw_coloring
from repro.experiments import exp11_loss_robustness as exp11
from repro.experiments import exp13_wakeup_patterns as exp13
from repro.faults import FaultPlan, MessageFaults, NodeOutage
from repro.orchestration import merged_rows, run_sharded
from repro.orchestration.store import RunStore
from repro.telemetry import Telemetry, read_run

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _fixture(name: str) -> list[dict]:
    return json.loads((FIXTURES / name).read_text(encoding="utf-8"))


def _canonical(rows: list[dict]) -> str:
    return json.dumps(rows, sort_keys=True, default=str)


class TestHistoricalRowParity:
    def test_exp11_rows_bit_identical_to_pre_refactor(self):
        rows = exp11.run(seeds=(0, 1))
        assert _canonical(rows) == _canonical(_fixture("exp11_rows.json"))
        exp11.check(rows)

    def test_exp13_rows_bit_identical_to_pre_refactor(self):
        rows = exp13.run(seeds=(0, 1))
        assert _canonical(rows) == _canonical(_fixture("exp13_rows.json"))
        exp13.check(rows)


class TestFaultEventsInTelemetry:
    def test_artifact_carries_fault_counters(self, tmp_path):
        out = tmp_path / "run.jsonl"
        telemetry = Telemetry(out=out, profile=False, trace=False)
        plan = FaultPlan(
            outages=[NodeOutage(node=0, start=0, stop=100)],
            messages=MessageFaults(drop=0.3),
        )
        deployment = uniform_deployment(20, 3.0, seed=4)
        params = PhysicalParams().with_r_t(1.0)
        result = run_mw_coloring(
            deployment, params, seed=4, telemetry=telemetry, faults=plan
        )
        artifact = read_run(out)
        metrics = artifact.metrics
        assert metrics["channel.dropped_deliveries"]["value"] == (
            result.fault_events["dropped"]
        )
        assert metrics["faults.suppressed_transmissions"]["value"] == (
            result.fault_events["suppressed_transmissions"]
        )


class TestOrchestratedFaults:
    UNIT_KW = {"seeds": [0], "drops": [0.0, 0.15]}

    def test_fault_plan_folds_into_config_hash(self):
        plain = run_sharded("exp11", jobs=1, unit_kwargs=dict(self.UNIT_KW))
        faulted = run_sharded(
            "exp11", jobs=1, unit_kwargs=dict(self.UNIT_KW),
            faults=FaultPlan(outages=[NodeOutage(node=1, start=0, stop=50)]),
        )
        assert plain.config_hash != faulted.config_hash
        assert plain.complete and faulted.complete

    def test_sweep_with_faults_resumes_from_store(self, tmp_path):
        store = RunStore(tmp_path / "store")
        plan = FaultPlan(messages=MessageFaults(drop=0.05), seed=3)
        first = run_sharded(
            "exp11", jobs=1, unit_kwargs=dict(self.UNIT_KW),
            store=store, faults=plan,
        )
        assert first.complete
        # Same plan (as its canonical dict): every shard loads from disk.
        resumed = run_sharded(
            "exp11", jobs=1, unit_kwargs=dict(self.UNIT_KW),
            store=store, resume=True, faults=plan.to_dict(),
        )
        assert resumed.config_hash == first.config_hash
        assert sorted(resumed.resumed) == sorted(resumed.records)
        assert not resumed.executed
        assert _canonical(merged_rows(resumed)) == _canonical(
            merged_rows(first)
        )
        # A different plan is different work: nothing resumes.
        other = run_sharded(
            "exp11", jobs=1, unit_kwargs=dict(self.UNIT_KW),
            store=store, resume=True,
            faults=FaultPlan(messages=MessageFaults(drop=0.1), seed=3),
        )
        assert other.config_hash != first.config_hash
        assert not other.resumed
