"""Scale sanity: the full pipeline at a few hundred nodes.

One deliberately larger run (everything else in the suite stays small and
fast) to catch size-dependent bugs: index arithmetic, grid-bucket
distribution, heap pressure in the event engine, channel matrix shapes.
"""

import numpy as np
import pytest

from repro import PhysicalParams, uniform_deployment
from repro.coloring.runner import run_mw_coloring_audited


@pytest.fixture(scope="module")
def params():
    return PhysicalParams().with_r_t(1.0)


@pytest.fixture(scope="module")
def big_run(params):
    deployment = uniform_deployment(300, 11.0, seed=99)
    return run_mw_coloring_audited(deployment, params, seed=7)


class TestScale:
    def test_three_hundred_nodes_end_to_end(self, big_run):
        result, auditor = big_run
        assert result.stats.completed
        assert result.is_proper()
        assert auditor.clean
        assert result.max_color <= result.palette_bound
        # sanity on structure sizes at this scale
        assert 30 <= len(result.leaders) <= 120
        assert result.num_colors <= 3 * result.constants.delta

    def test_decision_slots_all_within_budget(self, big_run):
        result, _ = big_run
        assert (result.decision_slots >= 0).all()
        assert result.decision_slots.max() < result.stats.slots_run
