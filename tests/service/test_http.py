"""End-to-end HTTP tests: a real server on an ephemeral port.

The acceptance path for the service PR: submit the same job twice and
observe exactly one execution plus one cache hit, and verify the
streamed NDJSON matches the on-disk telemetry artifacts byte-for-byte
(as parsed records).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceApp, make_server

from .conftest import wait_until


@pytest.fixture
def service(tmp_path, fake_registry):
    app = ServiceApp(tmp_path / "store", workers=2, job_procs=1)
    server = make_server(app, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield {"base": f"http://{host}:{port}", "app": app}
    finally:
        server.shutdown()
        server.server_close()
        app.close()


def get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as failure:
        return failure.code, json.loads(failure.read())


def post(base: str, path: str, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as failure:
        return failure.code, json.loads(failure.read())


def stream(base: str, path: str) -> list[dict]:
    with urllib.request.urlopen(base + path, timeout=120) as reply:
        assert reply.headers["Content-Type"] == "application/x-ndjson"
        return [json.loads(line) for line in reply.read().splitlines()]


SPEC = {"experiment": "fake", "seeds": 2, "params": {"xs": [1, 2]}}


def wait_done(service, job_id: str) -> dict:
    final = {}

    def settled() -> bool:
        _, body = get(service["base"], f"/v1/jobs/{job_id}")
        final.update(body["job"])
        return body["job"]["state"] in ("done", "failed")

    assert wait_until(settled), f"job {job_id} never settled"
    return final


class TestDiscovery:
    def test_health(self, service):
        status, body = get(service["base"], "/v1/health")
        assert status == 200
        assert body["schema"] == "repro.service/1"
        assert body["status"] == "ok"

    def test_experiments_listing_carries_capabilities(self, service):
        status, body = get(service["base"], "/v1/experiments")
        assert status == 200
        listed = {entry["id"]: entry for entry in body["experiments"]}
        assert listed["exp1"]["has_seeds"]
        assert listed["exp1"]["accepts_resolver"]
        assert not listed["exp10"]["has_seeds"]
        assert listed["exp13"]["accepts_faults"]


class TestJobFlow:
    def test_submit_twice_one_execution_one_cache_hit(self, service):
        base = service["base"]
        status, body = post(base, "/v1/jobs", SPEC)
        assert status == 202
        assert body["created"] and not body["cached"]
        job_id = body["job"]["job_id"]

        final = wait_done(service, job_id)
        assert final["state"] == "done"
        assert final["executions"] == 1

        status, body = post(base, "/v1/jobs", SPEC)
        assert status == 200
        assert body["cached"] and not body["created"]
        assert body["job"]["executions"] == 1

        status, body = get(base, f"/v1/jobs/{job_id}/result")
        assert status == 200
        assert body["num_rows"] == 4
        assert body["check_passed"] is True
        values = {(row["x"], row["seed"]) for row in body["rows"]}
        assert values == {(1, 0), (1, 1), (2, 0), (2, 1)}

    def test_streamed_ndjson_matches_on_disk_artifacts(self, service):
        base = service["base"]
        _, body = post(base, "/v1/jobs", SPEC)
        job_id = body["job"]["job_id"]
        events = stream(base, f"/v1/jobs/{job_id}/events?timeout_s=120")

        assert events[0]["k"] == "job"
        assert events[-1]["k"] == "job" and events[-1]["job"]["state"] == "done"
        streamed = [
            (event["shard"], event["record"])
            for event in events
            if event["k"] == "telemetry"
        ]
        assert streamed

        manager = service["app"].manager
        record = manager.get(job_id)
        on_disk = []
        for index in range(record.num_shards):
            path = manager.cache.telemetry_path(
                record.experiment, record.config_hash, index
            )
            with path.open(encoding="utf-8") as handle:
                for line in handle:
                    on_disk.append((index, json.loads(line)))
        assert streamed == on_disk

    def test_jobs_listing_shows_submissions(self, service):
        base = service["base"]
        _, body = post(base, "/v1/jobs", SPEC)
        job_id = body["job"]["job_id"]
        status, body = get(base, "/v1/jobs")
        assert status == 200
        assert job_id in {job["job_id"] for job in body["jobs"]}


class TestErrorMapping:
    def test_unknown_endpoint_404(self, service):
        status, body = get(service["base"], "/v1/nope")
        assert status == 404 and "error" in body

    def test_unknown_job_404(self, service):
        status, _ = get(service["base"], "/v1/jobs/fake-0000000000000000")
        assert status == 404

    def test_wrong_method_405(self, service):
        status, _ = post(service["base"], "/v1/health", {})
        assert status == 405

    def test_invalid_body_400(self, service):
        request = urllib.request.Request(
            service["base"] + "/v1/jobs",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as failure:
            urllib.request.urlopen(request, timeout=30)
        assert failure.value.code == 400

    def test_validation_failure_400(self, service):
        status, body = post(
            service["base"], "/v1/jobs", {"experiment": "no-such"}
        )
        assert status == 400 and "experiment" in body["error"]

    def test_result_before_done_409(self, service):
        base = service["base"]
        slow = {
            "experiment": "fake",
            "seeds": 1,
            "params": {"xs": [21], "sleep_s": 1.0},
        }
        _, body = post(base, "/v1/jobs", slow)
        job_id = body["job"]["job_id"]
        status, _ = get(base, f"/v1/jobs/{job_id}/result")
        assert status == 409
        wait_done(service, job_id)

    def test_bad_query_parameter_400(self, service):
        _, body = post(service["base"], "/v1/jobs", SPEC)
        job_id = body["job"]["job_id"]
        status, _ = get(
            service["base"], f"/v1/jobs/{job_id}/events?timeout_s=soon"
        )
        assert status == 400
        wait_done(service, job_id)


class TestServeCli:
    def test_parser_accepts_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--store", "runs",
                "--host", "0.0.0.0",
                "--port", "0",
                "--workers", "3",
                "--jobs", "2",
                "--queue-size", "8",
                "--no-check",
                "--verbose",
            ]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.port == 0 and args.workers == 3 and args.queue_size == 8
