"""JobManager: dedup, cache hits, failure lifecycle, event streams."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.service import JobManager, JobSpec
from repro.telemetry import read_run

from .conftest import wait_until


@pytest.fixture
def manager(tmp_path, fake_registry):
    manager = JobManager(tmp_path / "store", workers=2, job_procs=1)
    yield manager
    manager.shutdown()


def fake_spec(**overrides) -> JobSpec:
    kwargs = {"experiment": "fake", "seeds": 2, "params": {"xs": [1, 2]}}
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def wait_done(manager: JobManager, job_id: str) -> None:
    assert wait_until(
        lambda: manager.get(job_id).state in ("done", "failed")
    ), f"job {job_id} never settled"


class TestSubmission:
    def test_submit_executes_once_and_serves_rows(self, manager):
        record, created, cached = manager.submit(fake_spec())
        assert created and not cached
        assert record.job_id == f"fake-{record.config_hash}"
        wait_done(manager, record.job_id)
        assert record.state == "done"
        assert record.executions == 1
        assert record.check_passed is True
        result = manager.result(record.job_id)
        assert result["num_rows"] == record.rows_count == 4
        assert result["columns"] == ["x", "seed", "value"]

    def test_duplicate_submission_attaches_without_new_execution(self, manager):
        first, _, _ = manager.submit(fake_spec())
        wait_done(manager, first.job_id)
        again, created, cached = manager.submit(fake_spec())
        assert again is first
        assert not created and cached
        assert first.executions == 1

    def test_cold_manager_hits_the_store_with_zero_executions(
        self, tmp_path, fake_registry
    ):
        # a service restart keeps its cache: the second manager serves
        # the same submission from disk without running anything
        store = tmp_path / "store"
        warm = JobManager(store, workers=1)
        try:
            record, _, _ = warm.submit(fake_spec())
            wait_done(warm, record.job_id)
            rows = warm.result(record.job_id)["rows"]
        finally:
            warm.shutdown()
        cold = JobManager(store, workers=1)
        try:
            cached_record, created, cached = cold.submit(fake_spec())
            assert created and cached
            assert cached_record.state == "done"
            assert cached_record.cached and cached_record.executions == 0
            assert cold.result(cached_record.job_id)["rows"] == rows
        finally:
            cold.shutdown()

    def test_execution_knobs_share_one_job(self, manager):
        first, _, _ = manager.submit(fake_spec(shard_size=1))
        second, created, _ = manager.submit(fake_spec(shard_size=4, retries=3))
        assert second is first and not created

    def test_distinct_params_are_distinct_jobs(self, manager):
        first, _, _ = manager.submit(fake_spec(params={"xs": [1, 2]}))
        second, created, _ = manager.submit(fake_spec(params={"xs": [1, 3]}))
        assert created and second.job_id != first.job_id

    def test_queue_overflow_answers_503(self, tmp_path, fake_registry):
        throttled = JobManager(
            tmp_path / "store", workers=1, queue_size=1
        )
        try:
            # a slow job occupies the lone worker; the next fills the
            # queue; the one after must bounce with 503
            specs = [
                fake_spec(params={"xs": [x], "sleep_s": 0.5})
                for x in (11, 12, 13)
            ]
            busy, _, _ = throttled.submit(specs[0])
            # the lone worker must have dequeued the first job before
            # the second fills the queue, else the 503 hits job two
            assert wait_until(lambda: busy.state != "queued")
            throttled.submit(specs[1])
            with pytest.raises(ServiceError) as failure:
                throttled.submit(specs[2])
            assert failure.value.status == 503
        finally:
            throttled.shutdown()


class TestFailureLifecycle:
    def test_failing_job_reports_failed_and_result_answers_409(
        self, manager, tmp_path
    ):
        spec = fake_spec(
            params={
                "xs": [5],
                "fail_first": 9,
                "fail_dir": str(tmp_path / "marks"),
            },
            retries=0,
        )
        record, _, _ = manager.submit(spec)
        wait_done(manager, record.job_id)
        assert record.state == "failed"
        assert record.failures
        with pytest.raises(ServiceError) as failure:
            manager.result(record.job_id)
        assert failure.value.status == 409

    def test_resubmitting_a_failed_job_requeues_it(self, manager, tmp_path):
        # fail_first=1 with retries=0: the first execution fails, the
        # resubmission's execution finds the marker and succeeds
        spec = fake_spec(
            params={
                "xs": [7],
                "fail_first": 1,
                "fail_dir": str(tmp_path / "marks"),
            },
            retries=0,
        )
        record, _, _ = manager.submit(spec)
        wait_done(manager, record.job_id)
        assert record.state == "failed"
        again, created, cached = manager.submit(spec)
        assert again is record and not created and not cached
        wait_done(manager, record.job_id)
        assert record.state == "done"
        assert record.executions == 2

    def test_unknown_job_answers_404(self, manager):
        with pytest.raises(ServiceError) as failure:
            manager.get("fake-0000000000000000")
        assert failure.value.status == 404


class TestEventStream:
    def test_stream_replays_exactly_the_on_disk_artifacts(self, manager):
        record, _, _ = manager.submit(fake_spec(shard_size=2))
        events = list(manager.iter_events(record.job_id, timeout_s=60))
        assert events[0]["k"] == "job"
        assert events[-1]["k"] == "job"
        assert events[-1]["job"]["state"] == "done"

        streamed = [e for e in events if e["k"] == "telemetry"]
        assert streamed, "no telemetry events streamed"
        on_disk = []
        for index in range(record.num_shards):
            path = manager.cache.telemetry_path(
                record.experiment, record.config_hash, index
            )
            with path.open(encoding="utf-8") as handle:
                for line in handle:
                    on_disk.append((index, json.loads(line)))
        assert [(e["shard"], e["record"]) for e in streamed] == on_disk
        # and the artifacts themselves are valid telemetry files
        for index in range(record.num_shards):
            artifact = read_run(
                manager.cache.telemetry_path(
                    record.experiment, record.config_hash, index
                )
            )
            assert artifact.rows

    def test_stream_of_cached_job_is_a_full_replay(
        self, tmp_path, fake_registry
    ):
        store = tmp_path / "store"
        warm = JobManager(store, workers=1)
        try:
            record, _, _ = warm.submit(fake_spec())
            live = list(warm.iter_events(record.job_id, timeout_s=60))
        finally:
            warm.shutdown()
        cold = JobManager(store, workers=1)
        try:
            cached_record, _, cached = cold.submit(fake_spec())
            assert cached
            replay = list(cold.iter_events(cached_record.job_id, timeout_s=60))
        finally:
            cold.shutdown()
        live_telemetry = [e for e in live if e["k"] == "telemetry"]
        replay_telemetry = [e for e in replay if e["k"] == "telemetry"]
        assert replay_telemetry == live_telemetry

    def test_stream_of_failed_job_terminates(self, manager, tmp_path):
        spec = fake_spec(
            params={
                "xs": [9],
                "fail_first": 9,
                "fail_dir": str(tmp_path / "marks"),
            },
            retries=0,
        )
        record, _, _ = manager.submit(spec)
        events = list(manager.iter_events(record.job_id, timeout_s=60))
        assert events[-1]["job"]["state"] == "failed"
