"""Job submission validation: strict accept/reject at the API boundary."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.faults import FaultPlan, MessageFaults
from repro.service import JobSpec, job_spec_from_payload


def reject(payload, match: str) -> None:
    with pytest.raises(ServiceError, match=match) as failure:
        job_spec_from_payload(payload)
    assert failure.value.status == 400


class TestAccept:
    def test_minimal_submission_fills_defaults(self):
        spec = job_spec_from_payload({"experiment": "exp1"})
        assert spec == JobSpec(experiment="exp1", seeds=2)
        assert spec.shard_size == 1 and spec.retries == 1
        assert spec.timeout_s is None and not spec.batch

    def test_default_and_explicit_seed_count_are_one_cache_entry(self):
        # the default is normalised to an explicit count, so both specs
        # produce byte-identical unit kwargs (hence one config hash)
        implicit = job_spec_from_payload({"experiment": "exp1"})
        explicit = job_spec_from_payload({"experiment": "exp1", "seeds": 2})
        assert implicit == explicit
        assert list(implicit.unit_kwargs()["seeds"]) == [0, 1]

    def test_seedless_experiment_accepts_omitted_seeds(self):
        # exp10 sweeps an (alpha, beta) grid with no seed axis
        spec = job_spec_from_payload({"experiment": "exp10"})
        assert spec.seeds is None
        assert "seeds" not in spec.unit_kwargs()

    def test_full_submission_round_trips(self):
        faults = FaultPlan(messages=MessageFaults(drop=0.2)).to_dict()
        payload = {
            "experiment": "exp13",
            "seeds": 3,
            "params": {"patterns": ["synchronous"]},
            "faults": faults,
            "shard_size": 2,
            "timeout_s": 30,
            "retries": 0,
            "batch": True,
        }
        spec = job_spec_from_payload(payload)
        assert spec.seeds == 3
        assert spec.params == {"patterns": ["synchronous"]}
        assert spec.faults == faults
        assert spec.timeout_s == 30.0 and spec.retries == 0 and spec.batch
        echoed = spec.as_dict()
        assert echoed["experiment"] == "exp13"
        assert echoed["faults"] == faults

    def test_resolver_accepted_where_supported(self):
        spec = job_spec_from_payload(
            {"experiment": "exp1", "resolver": "sparse"}
        )
        assert spec.resolver == "sparse"

    def test_algorithm_selector_rides_params_for_the_arena(self):
        # Registry-backed experiments need no schema extension: exp14's
        # units() takes the selector, so it validates like any override.
        spec = job_spec_from_payload(
            {"experiment": "exp14", "params": {"algorithm": "greedy,luby"}}
        )
        assert spec.unit_kwargs()["algorithm"] == "greedy,luby"

    def test_algorithm_param_rejected_off_the_arena(self):
        reject(
            {"experiment": "exp1", "params": {"algorithm": "mw"}},
            "does not accept param 'algorithm'",
        )


class TestReject:
    def test_non_object_bodies(self):
        for payload in (None, [], "exp1", 7):
            reject(payload, "JSON object")

    def test_unknown_fields_name_the_offender(self):
        reject({"experiment": "exp1", "resolvr": "sparse"}, "resolvr")

    def test_unknown_experiment_lists_the_registry(self):
        reject({"experiment": "nope"}, "exp1")

    def test_bad_seed_counts(self):
        reject({"experiment": "exp1", "seeds": 0}, ">= 1")
        reject({"experiment": "exp1", "seeds": "two"}, "integer")
        reject({"experiment": "exp1", "seeds": True}, "integer")

    def test_seeds_rejected_for_seedless_experiments(self):
        reject({"experiment": "exp10", "seeds": 2}, "no seed axis")

    def test_params_must_be_known_to_units(self):
        reject(
            {"experiment": "exp1", "params": {"extent": [4.0]}},
            "does not accept param",
        )

    def test_reserved_params_must_use_top_level_fields(self):
        for key in ("seeds", "faults", "resolver"):
            reject(
                {"experiment": "exp1", "params": {key: 1}},
                "top-level",
            )

    def test_bad_resolver_values(self):
        reject({"experiment": "exp1", "resolver": "cuda"}, "dense")

    def test_sparse_resolver_rejected_where_unsupported(self):
        reject(
            {"experiment": "exp10", "resolver": "sparse"},
            "does not support resolver",
        )

    def test_faults_rejected_where_unsupported(self):
        plan = FaultPlan(messages=MessageFaults(drop=0.2)).to_dict()
        reject({"experiment": "exp1", "faults": plan}, "fault plan")

    def test_malformed_fault_plans(self):
        reject(
            {"experiment": "exp13", "faults": {"messages": {"drop": 1.5}}},
            "invalid fault plan",
        )

    def test_execution_knob_bounds(self):
        reject({"experiment": "exp1", "shard_size": 0}, "shard_size")
        reject({"experiment": "exp1", "timeout_s": 0}, "timeout_s")
        reject({"experiment": "exp1", "retries": -1}, "retries")
        reject({"experiment": "exp1", "batch": "yes"}, "batch")
