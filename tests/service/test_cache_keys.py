"""Cache keys cannot collide across resolver and fault-plan variants.

The service's whole caching story rests on one property: specs that
describe *different rows* hash to different config hashes (distinct
store directories, distinct job ids), while pure execution knobs leave
the hash untouched.  These are regression tests for that property at
the :func:`~repro.orchestration.plan_sweep` layer the service keys on.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, MessageFaults
from repro.orchestration import RunStore, plan_sweep

FAKE = "tests.orchestration.fake_exp"


def plan_for(**kwargs):
    return plan_sweep("exp1", unit_kwargs={"seeds": range(2)}, **kwargs)


class TestResolverAxis:
    def test_sparse_and_dense_are_distinct_entries(self):
        dense = plan_for()
        sparse = plan_for(resolver="sparse")
        assert dense.config_hash != sparse.config_hash

    def test_dense_aliases_the_default(self):
        # "dense" and None mean the same engine and must share the
        # pre-resolver hash, so existing dense stores keep resuming
        assert plan_for().config_hash == plan_for(resolver="dense").config_hash


class TestFaultAxis:
    def test_fault_plan_changes_the_hash(self):
        plan = FaultPlan(messages=MessageFaults(drop=0.2))
        clean = plan_sweep("exp13")
        faulty = plan_sweep("exp13", faults=plan)
        assert clean.config_hash != faulty.config_hash

    def test_different_plans_hash_apart(self):
        light = FaultPlan(messages=MessageFaults(drop=0.1))
        heavy = FaultPlan(messages=MessageFaults(drop=0.5))
        assert (
            plan_sweep("exp13", faults=light).config_hash
            != plan_sweep("exp13", faults=heavy).config_hash
        )

    def test_dict_and_object_plans_are_one_entry(self):
        plan = FaultPlan(messages=MessageFaults(drop=0.2))
        assert (
            plan_sweep("exp13", faults=plan).config_hash
            == plan_sweep("exp13", faults=plan.to_dict()).config_hash
        )


class TestAlgorithmAxis:
    ARENA_KW = {"seeds": range(1), "n": 12, "extent": 2.4}

    def test_selectors_hash_apart(self):
        hashes = {
            selector: plan_sweep(
                "exp14",
                unit_kwargs={**self.ARENA_KW, "algorithm": selector},
            ).config_hash
            for selector in ("greedy", "luby", "greedy,luby")
        }
        assert len(set(hashes.values())) == 3

    def test_params_spelling_matches_the_cli_flag(self):
        # The service path (params.algorithm -> unit_kwargs) and the CLI
        # path (--algorithm -> plan_sweep(algorithm=...)) must be one
        # cache entry: the selector lands in the same units either way.
        via_params = plan_sweep(
            "exp14", unit_kwargs={**self.ARENA_KW, "algorithm": "greedy"}
        )
        via_flag = plan_sweep(
            "exp14", unit_kwargs=dict(self.ARENA_KW), algorithm="greedy"
        )
        assert via_params.config_hash == via_flag.config_hash
        assert via_params.units == via_flag.units

    def test_unknown_selector_fails_the_plan_not_the_worker(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            plan_sweep(
                "exp14",
                unit_kwargs={**self.ARENA_KW, "algorithm": "no-such"},
            )


class TestCrossVariantSeparation:
    def test_dense_no_faults_vs_sparse_with_plan_store_apart(self, tmp_path):
        # the headline regression: the two ends of the spec space land
        # in different store directories and different job ids
        dense = plan_for()
        sparse = plan_for(resolver="sparse")
        store = RunStore(tmp_path)
        dirs = {
            store.run_dir(p.experiment, p.config_hash) for p in (dense, sparse)
        }
        assert len(dirs) == 2
        job_ids = {f"{p.experiment}-{p.config_hash}" for p in (dense, sparse)}
        assert len(job_ids) == 2

    def test_seed_count_is_part_of_the_key(self):
        two = plan_sweep("exp1", unit_kwargs={"seeds": range(2)})
        three = plan_sweep("exp1", unit_kwargs={"seeds": range(3)})
        assert two.config_hash != three.config_hash

    def test_execution_knobs_never_reach_the_hash(self):
        # shard size / timeout / retries are scheduling, not work: the
        # planner does not even see them, so the hash cannot move
        baseline = plan_for()
        again = plan_for()
        assert baseline.config_hash == again.config_hash
        assert baseline.units == again.units

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            plan_sweep("exp99")

    def test_module_override_matches_registry_free_planning(self):
        plan = plan_sweep(
            "fake", module=FAKE, unit_kwargs={"seeds": [0], "xs": [1, 2]}
        )
        assert plan.num_units == 2
        assert len(plan.config_hash) == 16
