"""Shared fixtures for the job-service tests.

The ``fake`` experiment (tests/orchestration/fake_exp.py) is patched
into the registry so jobs execute in milliseconds; its module path is
importable from pool worker processes, so the full execution pipeline
(threads -> process pool -> store) runs for real.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import REGISTRY
from tests.orchestration import fake_exp


@pytest.fixture
def fake_registry(monkeypatch):
    """Register the orchestration fixture experiment as ``fake``."""
    monkeypatch.setitem(REGISTRY, "fake", fake_exp)
    return fake_exp


def wait_until(predicate, timeout_s: float = 60.0, poll_s: float = 0.02) -> bool:
    """Poll ``predicate`` until true or the deadline passes."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()
