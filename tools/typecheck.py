#!/usr/bin/env python
"""Run the strict mypy gate, skipping gracefully where mypy is absent.

The typing gate is ``mypy --strict`` over ``src/repro`` with the
configuration in ``pyproject.toml`` (global relaxations and the
per-module exception list are documented there and in
docs/STATIC_ANALYSIS.md).  This wrapper exists because the gate must be:

* **blocking in CI** — ``python tools/typecheck.py --require`` exits 2
  when mypy is not importable, so a mis-provisioned CI image fails loudly
  instead of silently skipping the check;
* **harmless locally** — contributors without mypy installed get a
  one-line "skipped" notice and exit 0, so pre-commit chains and local
  gate scripts do not force anyone to install the type checker.

Exit codes: 0 clean (or skipped without ``--require``), 1 type errors,
2 mypy unavailable under ``--require``.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="typecheck", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) when mypy is not installed instead of skipping",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="paths to check (default: src/repro)",
    )
    args = parser.parse_args(argv)

    if importlib.util.find_spec("mypy") is None:
        if args.require:
            print(
                "typecheck: mypy is not installed but --require was given",
                file=sys.stderr,
            )
            return 2
        print("typecheck: mypy not installed; skipping (pip install mypy)")
        return 0

    command = [sys.executable, "-m", "mypy", "--strict", *args.paths]
    completed = subprocess.run(command)
    return completed.returncode


if __name__ == "__main__":
    sys.exit(main())
