#!/usr/bin/env python3
"""End-to-end sweep smoke: interrupt a parallel sweep, resume, check parity.

This drives the shipped CLI exactly the way a user would:

1. run ``repro experiment <id>`` serially and capture its telemetry rows
   (the ground truth),
2. start ``repro sweep <id> --jobs 2 --store <dir>`` as a child process
   and send it SIGINT after the first shard completes — the graceful
   drain must persist finished shards and exit with code 130,
3. run the same sweep again with ``--resume``, which must skip the
   persisted shards and complete,
4. assert the resumed sweep's telemetry rows are byte-identical (as
   JSON) to the serial run's.

Any deviation — wrong exit code, nothing persisted, nothing resumed,
row mismatch — exits non-zero, so CI fails loudly.

With ``--batch`` every leg runs with ``--seeds 4`` and the sweep legs
additionally pass ``--batch --shard-size 2``, so each of the 8 shards
folds its seed-contiguous units into one ``repro.batch`` execution
(at the default 2 seeds the sweep finishes before the interrupt can
land); the final parity assertion then also proves batched rows ==
serial rows end to end through the CLI.

Run:  PYTHONPATH=src python tools/sweep_smoke.py [--id exp1] [--batch]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

try:  # allow running without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(SRC))

from repro.telemetry import read_run


def _env() -> dict:
    env = dict(os.environ)  # repro: noqa[DET004] builds the child process environment
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _cli(*args: str, **kwargs) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=str(REPO_ROOT), text=True, **kwargs,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--id", default="exp1",
        help="experiment to sweep (needs multi-second shards: exp1)",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="run the sweep legs with --batch --shard-size 2 so each "
             "shard executes its seeds as one batched run",
    )
    args = parser.parse_args(argv)
    batch_args = ["--batch", "--shard-size", "2"] if args.batch else []
    seeds_args = ["--seeds", "4"] if args.batch else []

    with tempfile.TemporaryDirectory(prefix="sweep-smoke-") as tmp:
        tmp_path = pathlib.Path(tmp)
        store = tmp_path / "store"
        serial_out = tmp_path / "serial.jsonl"
        sweep_out = tmp_path / "sweep.jsonl"

        print(f"== serial baseline: repro experiment {args.id}")
        serial = _cli(
            "experiment", args.id, "--telemetry-out", str(serial_out),
            *seeds_args, stdout=subprocess.DEVNULL,
        )
        if serial.returncode != 0:
            print(f"FAIL: serial run exited {serial.returncode}")
            return 1
        serial_rows = read_run(serial_out).rows

        mode = " --batch --shard-size 2" if args.batch else ""
        print(f"== interrupted sweep: repro sweep {args.id} --jobs 2{mode}")
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", args.id,
             "--jobs", "2", "--store", str(store),
             *batch_args, *seeds_args],
            env=_env(), cwd=str(REPO_ROOT), text=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        # progress lines stream on stderr; interrupt after the first shard
        for line in child.stderr:
            if "done:" in line:
                child.send_signal(signal.SIGINT)
                break
        child.stderr.read()
        code = child.wait(timeout=120)
        if code != 130:
            print(f"FAIL: interrupted sweep exited {code}, expected 130")
            return 1
        persisted = list(store.rglob("shard-*.json"))
        if not persisted:
            print("FAIL: graceful drain persisted no shards")
            return 1
        print(f"   drained cleanly with {len(persisted)} shard(s) persisted")

        print(f"== resume: repro sweep {args.id} --jobs 2 --resume{mode}")
        resumed = _cli(
            "sweep", args.id, "--jobs", "2", "--store", str(store),
            "--resume", "--telemetry-out", str(sweep_out),
            *batch_args, *seeds_args,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        if resumed.returncode != 0:
            print(f"FAIL: resumed sweep exited {resumed.returncode}")
            return 1
        if "resumed" not in resumed.stdout:
            print("FAIL: resumed sweep did not report skipped shards")
            return 1

        sweep_rows = read_run(sweep_out).rows
        if json.dumps(sweep_rows) != json.dumps(serial_rows):
            print("FAIL: resumed sweep rows differ from the serial run")
            return 1

        suffix = "+batch" if args.batch else ""
        print(f"OK: {len(sweep_rows)} rows, parallel+resume{suffix} == serial")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
