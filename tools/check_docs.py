#!/usr/bin/env python3
"""Markdown link checker: every local link in the docs must resolve.

Scans the given markdown files (default: README.md, DESIGN.md,
EXPERIMENTS.md and docs/*.md) for

* inline links/images ``[text](target)``,
* backtick-quoted repo paths like ``docs/OBSERVABILITY.md`` or
  ``examples/quickstart.py`` (the repo's docs reference files this way
  far more often than with markdown links),

and verifies each local target exists relative to the file (or the repo
root).  External URLs (``http(s)://``, ``mailto:``) are ignored — no
network.  Exits non-zero listing every broken reference.

It also audits the API reference for coverage: every package under
``src/repro/`` (a directory with an ``__init__.py``) must be mentioned as
``repro.<package>`` somewhere in ``docs/API.md`` — an undocumented
subsystem fails CI with a named list.

Run:  python tools/check_docs.py [files...]
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# `path/to/file.ext` mentions; require a slash so `setup.py`-style bare
# names and code identifiers don't trigger.
BACKTICK_PATH = re.compile(
    r"`((?:[\w.-]+/)+[\w.-]+\.(?:md|py|json|yml|yaml|toml|txt))`"
)
EXTERNAL = ("http://", "https://", "mailto:")


def default_files() -> list[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    for name in ("DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"):
        if (REPO_ROOT / name).exists():
            files.append(REPO_ROOT / name)
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def resolves(target: str, source: pathlib.Path) -> bool:
    target = target.split("#", 1)[0]
    if not target:
        return True  # pure fragment: same-file anchor
    candidates = [source.parent / target, REPO_ROOT / target]
    return any(c.exists() for c in candidates)


def check_file(path: pathlib.Path) -> list[str]:
    broken = []
    text = path.read_text(encoding="utf-8")
    in_code_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        targets = [m.group(1) for m in INLINE_LINK.finditer(line)]
        if not in_code_block:
            targets += [m.group(1) for m in BACKTICK_PATH.finditer(line)]
        for target in targets:
            if target.startswith(EXTERNAL):
                continue
            if not resolves(target, path):
                broken.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {target}")
    return broken


def undocumented_packages() -> list[str]:
    """``src/repro/*`` packages that ``docs/API.md`` never mentions.

    A package counts as documented when the literal ``repro.<name>``
    appears anywhere in the API reference (section heading, bullet or
    import example alike — the check is about discoverability, not
    formatting).
    """
    api = REPO_ROOT / "docs" / "API.md"
    if not api.exists():
        return ["docs/API.md missing"]
    text = api.read_text(encoding="utf-8")
    missing = []
    for child in sorted((REPO_ROOT / "src" / "repro").iterdir()):
        if child.is_dir() and (child / "__init__.py").exists():
            if f"repro.{child.name}" not in text:
                missing.append(child.name)
    return missing


def main(argv: list[str]) -> int:
    files = [pathlib.Path(a) for a in argv] if argv else default_files()
    broken: list[str] = []
    for path in files:
        if not path.exists():
            broken.append(f"{path}: file not found")
            continue
        broken.extend(check_file(path))
    if broken:
        print("broken local references:", file=sys.stderr)
        for entry in broken:
            print(f"  {entry}", file=sys.stderr)
        return 1
    missing = undocumented_packages()
    if missing:
        print(
            "packages under src/repro/ missing from docs/API.md:",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  repro.{name}", file=sys.stderr)
        return 1
    print(
        f"OK — {len(files)} files, all local references resolve; "
        "every src/repro package appears in docs/API.md"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
