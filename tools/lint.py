#!/usr/bin/env python
"""Run the invariant linter from a bare checkout (no install needed).

Equivalent to ``repro lint`` / ``python -m repro.devtools.cli``; exists
so CI and pre-commit hooks can invoke the gate with nothing but a
checkout and a Python interpreter::

    python tools/lint.py src tools benchmarks

See docs/STATIC_ANALYSIS.md for the rule catalogue.
"""

from __future__ import annotations

import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.devtools.cli import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    sys.exit(main())
